// Package trace is the simulation's observability layer: deterministic,
// virtual-clock-timestamped request tracing plus aggregate metrics.
//
// The paper's entire argument is a latency budget across layers — §6.1.1
// decomposes the 35 µs forwarded no-op into inter-VM interrupts, ring
// serialization, and hypercall costs — and this package makes that budget a
// first-class output of every simulation run instead of something derived by
// hand from the perf constants. Each file operation entering the CVD opens a
// root span; every architectural hop it crosses (frontend post, inter-VM
// IRQ, backend dispatch, hypercall, grant validate, EPT walk + copy, device
// work, completion) emits a child span whose start and end are sim.Time
// values read from the Env. Because every span boundary coincides with a
// perf charge, the work spans of a request tile its root span exactly: the
// span-reconciliation test enforces sum-of-work-spans == end-to-end latency.
//
// # Design rules
//
//   - Observability reads the clock, it never advances it. No method here
//     charges virtual time, so an instrumented run and an uninstrumented run
//     of the same seed produce bit-identical timings.
//   - Zero cost when disabled. Get returns nil when no tracer is installed,
//     and every Tracer method is nil-receiver-safe, so instrumented hot
//     paths pay one registry lookup and nothing else — no allocations, no
//     branches beyond the nil checks (bench_test.go asserts allocs == 0).
//   - Deterministic output. Events are recorded in emission order, which is
//     fully determined by the (deterministic) simulation; metric dumps are
//     sorted; the Chrome export assigns pids/tids in first-seen order. Same
//     seed + same config ⇒ byte-identical trace file and metrics dump (the
//     stress harness verifies this across seeds).
//
// Like the faults package, installation is keyed on the *sim.Env so layers
// deep in the stack (hypervisor, IOMMU, scheduler) can find the tracer
// without plumbing a handle through every constructor.
package trace

import (
	"io"
	"sync"

	"paradice/internal/sim"
)

// Layer names used as the Chrome "thread" of a span. One process per VM,
// one thread per layer keeps Perfetto's timeline readable.
const (
	LayerSyscall    = "syscall"
	LayerFE         = "cvd-fe"
	LayerHV         = "hv"
	LayerIRQ        = "irq"
	LayerBE         = "cvd-be"
	LayerDriver     = "driver"
	LayerDevice     = "device"
	LayerSupervisor = "supervisor"
	LayerFaults     = "faults"
	LayerSched      = "sched"
)

// Kind classifies an event for the reconciliation rules.
type Kind uint8

// Event kinds.
const (
	// KindSpan is a leaf work span: a closed interval of virtual time during
	// which exactly one perf cost was being charged. The work spans of one
	// request tile its root span — they never overlap and never double-count,
	// which is what makes sum-of-spans == end-to-end latency checkable.
	KindSpan Kind = iota
	// KindGroup is an enclosing span (a request's root, the backend's
	// execute envelope, a supervisor recovery episode): useful nesting for
	// the timeline, excluded from tiling sums.
	KindGroup
	// KindInstant is a point event (a fault injection, a dropped IRQ, a
	// supervisor state change).
	KindInstant
)

// Event is one recorded trace event. Start and End are virtual-clock values;
// End == Start for instants.
type Event struct {
	Kind   Kind
	RID    uint64 // request ID; 0 = not attributable to one request
	VM     string // Chrome "process": the VM (or pseudo-VM) where time passed
	Layer  string // Chrome "thread": the architectural layer
	Name   string
	Start  sim.Time
	End    sim.Time
	Detail string // optional free-form annotation
}

// Dur returns the event's virtual duration.
func (e Event) Dur() sim.Duration { return e.End.Sub(e.Start) }

// Tracer records events and metrics for one simulation environment. All
// mutation happens from simulation context (one goroutine at a time under
// the sim hand-off discipline), so no internal locking is needed.
//
// The zero Tracer is not usable; construct with New and attach with Install.
// A nil *Tracer is valid everywhere: every method no-ops, which is how
// disabled tracing stays off the hot path.
type Tracer struct {
	env      *sim.Env
	events   []Event
	byProc   map[*sim.Proc]uint64 // proc -> request ID binding
	nextRID  uint64
	reg      *Registry
	schedOn  bool
	flight   *FlightRecorder // nil unless armed
	noRetain bool            // drop events after forwarding (long armed runs)
}

// New returns an empty tracer. Attach it to an environment with Install.
func New() *Tracer {
	return &Tracer{
		byProc: make(map[*sim.Proc]uint64),
		reg:    newRegistry(),
	}
}

// The registry maps environments to installed tracers, mirroring the faults
// package: distinct environments live on distinct (possibly parallel) test
// goroutines, hence the lock; within one environment, all tracer use is
// serialized by the simulation.
var (
	regMu sync.Mutex
	reg   = make(map[*sim.Env]*Tracer)
)

// Install attaches a tracer to an environment, replacing any previous one.
func Install(env *sim.Env, t *Tracer) {
	if t != nil {
		t.env = env
	}
	regMu.Lock()
	defer regMu.Unlock()
	reg[env] = t
}

// Uninstall detaches the environment's tracer. Always pair with Install in
// tests, or the registry pins the environment for the process lifetime.
func Uninstall(env *sim.Env) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(reg, env)
}

// Get returns the environment's tracer, or nil when env is nil or nothing is
// installed. This is the only call instrumented production code makes to
// find the tracer; a nil result makes every subsequent call a no-op.
func Get(env *sim.Env) *Tracer {
	if env == nil {
		return nil
	}
	regMu.Lock()
	t := reg[env]
	regMu.Unlock()
	return t
}

// Now reads the virtual clock. Returns 0 on a nil tracer — callers always
// guard the event emission, never the clock read.
func (t *Tracer) Now() sim.Time {
	if t == nil {
		return 0
	}
	return t.env.Now()
}

// NewRID allocates the next request ID (1-based; 0 means "no request").
func (t *Tracer) NewRID() uint64 {
	if t == nil {
		return 0
	}
	t.nextRID++
	return t.nextRID
}

// Bind attributes proc's subsequent charges to request rid, so layers that
// only see the Env (hypervisor, IOMMU) can label their spans via RIDOf.
func (t *Tracer) Bind(p *sim.Proc, rid uint64) {
	if t == nil || p == nil {
		return
	}
	t.byProc[p] = rid
}

// Unbind removes proc's request binding.
func (t *Tracer) Unbind(p *sim.Proc) {
	if t == nil || p == nil {
		return
	}
	delete(t.byProc, p)
}

// RIDOf returns the request bound to proc, or 0. Safe on a nil proc
// (scheduler/callback context).
func (t *Tracer) RIDOf(p *sim.Proc) uint64 {
	if t == nil || p == nil {
		return 0
	}
	return t.byProc[p]
}

// Span records a leaf work span. Zero-duration spans are dropped: they
// contribute nothing to the latency budget and only clutter the timeline
// (they occur when a charge runs in callback context, where perf.Charge is
// a no-op).
func (t *Tracer) Span(rid uint64, vm, layer, name string, start, end sim.Time) {
	if t == nil || end == start {
		return
	}
	e := Event{Kind: KindSpan, RID: rid, VM: vm, Layer: layer, Name: name, Start: start, End: end}
	if !t.noRetain {
		t.events = append(t.events, e)
	}
	t.flight.onEvent(e)
}

// Group records an enclosing span (request root, execute envelope, recovery
// episode). Group spans may contain work spans and other groups; they are
// excluded from tiling sums.
func (t *Tracer) Group(rid uint64, vm, layer, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	e := Event{Kind: KindGroup, RID: rid, VM: vm, Layer: layer, Name: name, Start: start, End: end}
	if !t.noRetain {
		t.events = append(t.events, e)
	}
	t.flight.onEvent(e)
}

// Instant records a point event at the current virtual time.
func (t *Tracer) Instant(rid uint64, vm, layer, name, detail string) {
	if t == nil {
		return
	}
	now := t.env.Now()
	e := Event{Kind: KindInstant, RID: rid, VM: vm, Layer: layer, Name: name, Start: now, End: now, Detail: detail}
	if !t.noRetain {
		t.events = append(t.events, e)
	}
	t.flight.onEvent(e)
}

// Events returns the recorded events in emission order. The slice is the
// tracer's own backing store; callers must not mutate it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Add increments counter name by n.
func (t *Tracer) Add(name string, n uint64) {
	if t == nil {
		return
	}
	t.reg.add(name, n)
}

// Set stores v as gauge name (last write wins; e.g. current MTTR).
func (t *Tracer) Set(name string, v uint64) {
	if t == nil {
		return
	}
	t.reg.set(name, v)
}

// Observe records one duration sample into histogram name.
func (t *Tracer) Observe(name string, d sim.Duration) {
	if t == nil {
		return
	}
	t.reg.observe(name, d)
}

// ObserveCount records one unit-less sample (a batch size, a vector length)
// into the count histogram name.
func (t *Tracer) ObserveCount(name string, n uint64) {
	if t == nil {
		return
	}
	t.reg.observeCount(name, n)
}

// Metrics returns the tracer's registry, or nil on a nil tracer.
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// WriteMetrics writes the plain-text metrics dump (sorted, deterministic).
func (t *Tracer) WriteMetrics(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.reg.Dump(w)
}

// ArmFlightRecorder attaches a flight recorder built from cfg: from now on
// every emitted event is forwarded into the recorder's digest pipeline.
// Arming never advances the virtual clock, so an armed and a disarmed run
// of the same seed stay bit-identical in time.
func (t *Tracer) ArmFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if t == nil {
		return nil
	}
	fr := NewFlightRecorder(cfg)
	fr.reg = t.reg
	t.flight = fr
	return fr
}

// Flight returns the armed flight recorder, or nil (on a nil tracer too).
// A nil recorder no-ops everywhere, so callers annotate unconditionally.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// SetEventRetention controls whether emitted events are retained in the
// unbounded Events() slice. Long always-on runs arm the flight recorder
// and turn retention off: digests and outlier trees stay (bounded), the
// raw firehose does not. On by default.
func (t *Tracer) SetEventRetention(on bool) {
	if t == nil {
		return
	}
	t.noRetain = !on
}

// EnableSched routes the environment's scheduler decisions through this
// tracer as structured instants (plus sched.* counters). Off by default:
// scheduler events are high-volume and most traces only need request spans.
func (t *Tracer) EnableSched(env *sim.Env) {
	if t == nil {
		return
	}
	t.schedOn = true
	env.Observer = t
}

// SchedCallback implements sim.SchedObserver.
func (t *Tracer) SchedCallback(at sim.Time) {
	if t == nil {
		return
	}
	t.reg.add("sched.callbacks", 1)
	if t.schedOn {
		t.events = append(t.events, Event{Kind: KindInstant, VM: "sim", Layer: LayerSched, Name: "callback", Start: at, End: at})
	}
}

// SchedResume implements sim.SchedObserver.
func (t *Tracer) SchedResume(at sim.Time, proc string) {
	if t == nil {
		return
	}
	t.reg.add("sched.resumes", 1)
	if t.schedOn {
		t.events = append(t.events, Event{Kind: KindInstant, VM: "sim", Layer: LayerSched, Name: "resume", Start: at, End: at, Detail: proc})
	}
}
