package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"paradice/internal/sim"
)

// The nil tracer must be inert: every method a no-op, every query a zero
// value. This is the whole disabled-tracing contract.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 || tr.NewRID() != 0 || tr.RIDOf(nil) != 0 {
		t.Fatal("nil tracer returned non-zero values")
	}
	tr.Bind(nil, 1)
	tr.Unbind(nil)
	tr.Span(1, "vm", LayerFE, "post", 0, 100)
	tr.Group(1, "vm", LayerSyscall, "ioctl", 0, 100)
	tr.Add("c", 1)
	tr.Set("g", 1)
	tr.Observe("h", 100)
	if tr.Events() != nil || tr.Metrics() != nil {
		t.Fatal("nil tracer exposed state")
	}
	var b bytes.Buffer
	if err := tr.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil tracer wrote metrics: %q", b.String())
	}
	b.Reset()
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer's chrome output is not JSON: %v", err)
	}
}

func TestGetOnUninstalledEnvIsNil(t *testing.T) {
	if Get(nil) != nil {
		t.Fatal("Get(nil) != nil")
	}
	env := sim.NewEnv()
	if Get(env) != nil {
		t.Fatal("Get on a fresh env should be nil")
	}
	tr := New()
	Install(env, tr)
	defer Uninstall(env)
	if Get(env) != tr {
		t.Fatal("Get did not return the installed tracer")
	}
}

// Zero-duration spans are dropped (charges in callback context no-op), but
// zero-duration groups and instants are kept.
func TestZeroDurationSpanDropped(t *testing.T) {
	env := sim.NewEnv()
	tr := New()
	Install(env, tr)
	defer Uninstall(env)
	tr.Span(1, "vm", LayerFE, "noop-charge", 500, 500)
	tr.Span(1, "vm", LayerFE, "real-charge", 500, 900)
	tr.Group(1, "vm", LayerSyscall, "empty-group", 500, 500)
	tr.Instant(1, "vm", LayerFaults, "point", "")
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3 (zero-duration span dropped)", len(ev))
	}
	if ev[0].Name != "real-charge" || ev[0].Dur() != 400 {
		t.Fatalf("unexpected first event %+v", ev[0])
	}
}

func TestRIDBinding(t *testing.T) {
	env := sim.NewEnv()
	tr := New()
	Install(env, tr)
	defer Uninstall(env)
	if r1, r2 := tr.NewRID(), tr.NewRID(); r1 != 1 || r2 != 2 {
		t.Fatalf("rids not 1-based sequential: %d, %d", r1, r2)
	}
	var done bool
	env.Spawn("p", func(p *sim.Proc) {
		tr.Bind(p, 7)
		if got := tr.RIDOf(p); got != 7 {
			t.Errorf("RIDOf after Bind = %d, want 7", got)
		}
		tr.Unbind(p)
		if got := tr.RIDOf(p); got != 0 {
			t.Errorf("RIDOf after Unbind = %d, want 0", got)
		}
		done = true
	})
	env.Run()
	if !done {
		t.Fatal("proc never ran")
	}
}

// The metrics dump is sorted and stable: the same registry contents produce
// the same bytes regardless of insertion order.
func TestMetricsDumpDeterministic(t *testing.T) {
	build := func(names []string) string {
		env := sim.NewEnv()
		tr := New()
		Install(env, tr)
		defer Uninstall(env)
		for _, n := range names {
			tr.Add("c."+n, 2)
			tr.Set("g."+n, 3)
			tr.Observe("h."+n, 1500)
			tr.Observe("h."+n, 0)
		}
		var b bytes.Buffer
		if err := tr.WriteMetrics(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if a != b {
		t.Fatalf("dump depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		"counter c.alpha 2\n",
		"gauge g.beta 3\n",
		"hist h.gamma count=2 sum=1500ns mean=750ns\n",
		"hist h.alpha bucket lt=2^0 1\n",  // the zero-duration sample
		"hist h.alpha bucket lt=2^11 1\n", // 1500ns: 2^10 <= 1500 < 2^11
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("dump missing %q:\n%s", want, a)
		}
	}
}

// The Chrome export is valid JSON with one process per VM, one thread per
// (vm, layer), and microsecond timestamps carrying nanosecond precision.
func TestWriteChrome(t *testing.T) {
	env := sim.NewEnv()
	tr := New()
	Install(env, tr)
	defer Uninstall(env)
	tr.Span(1, "guest1", LayerSyscall, "syscall", 0, 500)
	tr.Span(1, "hv", LayerHV, "hypercall", 500, 900)
	tr.Span(1, "guest1", LayerFE, "post", 900, 1300)
	tr.Group(1, "guest1", LayerSyscall, "ioctl /dev/x", 0, 35309)
	tr.Instant(0, "driver-vm", LayerSupervisor, "state:healthy", "boot")

	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   json.RawMessage `json:"ts"`
			Dur  json.RawMessage `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	// 3 VMs -> 3 process_name records; 4 (vm,layer) pairs -> 4 thread_name
	// records; then the 5 events.
	if len(doc.TraceEvents) != 3+4+5 {
		t.Fatalf("got %d records, want 12:\n%s", len(doc.TraceEvents), b.String())
	}
	// The group's duration must render as 35.309 µs exactly.
	if !bytes.Contains(b.Bytes(), []byte(`"dur":35.309`)) {
		t.Fatalf("missing nanosecond-precise duration 35.309:\n%s", b.String())
	}
	// Same VM ⇒ same pid across layers; different VM ⇒ different pid.
	byName := func(name string) (pid, tid int) {
		for _, e := range doc.TraceEvents {
			if e.Name == name && e.Ph != "M" {
				return e.Pid, e.Tid
			}
		}
		t.Fatalf("event %q not found", name)
		return 0, 0
	}
	sysPid, sysTid := byName("syscall")
	hvPid, _ := byName("hypercall")
	fePid, feTid := byName("post")
	if sysPid != fePid {
		t.Fatal("same VM mapped to different pids")
	}
	if hvPid == sysPid {
		t.Fatal("different VMs share a pid")
	}
	if sysTid == feTid {
		t.Fatal("different layers share a tid within one VM")
	}
}

func TestUsecFormatting(t *testing.T) {
	for _, c := range []struct {
		ns   int64
		want string
	}{
		{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"},
		{35309, "35.309"}, {-1500, "-1.500"},
	} {
		if got := usec(c.ns); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}
