package bench

import (
	"encoding/binary"
	"fmt"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// The translation-cache experiment: how much of a small operation's latency
// is per-request translation work — the grant declare, the shared-page grant
// scan at validation, and the per-page two-level walk of §5.2 — and how much
// of it the hypervisor's software TLB plus batched grant hypercalls
// (Config.TLB + Config.GrantBatch) recover when an application re-touches
// the same buffers. Small operations are where it matters: a no-op-sized
// ioctl spends a fifth of its polled latency re-proving translations the
// previous request already proved. The experiment sweeps the echoed payload
// size cold vs warm, reports the steady-state TLB hit rate, and counts
// frontend grant crossings for a scatter-gather command submission with and
// without batching.

// WalkSizes are the swept echoed-ioctl payload sizes, all within the
// small-transfer regime the assisted copy (not the map cache) serves.
var WalkSizes = []int{64, 256, 1024, 2048}

func init() {
	extraExperiments = append(extraExperiments, Experiment{
		ID:    "walkcache",
		Title: "Translation cache: software TLB and batched grant hypercalls",
		Run:   RunWalkcache,
	})
}

// echoDev echoes an ioctl payload back through the two assisted copies the
// command encodes (_IOWR: copy in, copy out) — the minimal operation whose
// cost is dominated by crossings plus translation work.
type echoDev struct {
	kernel.BaseOps
	ops int
}

func (d *echoDev) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	buf := make([]byte, cmd.Size())
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	d.ops++
	return 0, nil
}

const echoPath = "/dev/echo0"

func echoCmd(size int) devfile.IoctlCmd { return devfile.IOWR('w', 0x01, uint32(size)) }

func echoGuest(cfg paradice.Config) (*paradice.Machine, *kernel.Kernel, error) {
	m, err := paradice.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	dev := &echoDev{}
	m.DriverK.RegisterDevice(echoPath, dev, dev)
	g, err := m.AddGuest("guest1", kernel.Linux)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Paravirtualize(echoPath); err != nil {
		return nil, nil, err
	}
	return built(m), g.K, nil
}

// RunWalkcache produces the cold/warm small-op sweep, the steady-state TLB
// hit rate, and the batched-declare crossing counts.
func RunWalkcache(quick bool) ([]Row, error) {
	iters := 16
	if quick {
		iters = 6
	}
	coldCfg := paradice.Config{Mode: paradice.Polling}
	warmCfg := paradice.Config{Mode: paradice.Polling, TLB: true, GrantBatch: true}
	var rows []Row

	// Size sweep: identical echo loops, translation caches off vs on. The
	// measured value is the steady-state per-op latency (the last iteration —
	// the caches are warm from iteration 2 on; the simulation is
	// deterministic so one op is the converged value).
	for _, size := range WalkSizes {
		for _, c := range []struct {
			series string
			cfg    paradice.Config
		}{
			{"per-request walks", coldCfg},
			{"translation cache", warmCfg},
		} {
			m, k, err := echoGuest(c.cfg)
			if err != nil {
				return nil, err
			}
			last, err := echoLoop(m, k, size, iters)
			if err != nil {
				return nil, fmt.Errorf("%s size %d: %w", c.series, size, err)
			}
			rows = append(rows, Row{Series: c.series, X: sizeLabel(size),
				Value: last.Microseconds(), Unit: "µs/op"})
		}
	}

	// Steady-state TLB hit rate for the 1 KB echo loop: after the first
	// iteration proves the argument page, every later walk is a hit.
	{
		m, k, err := echoGuest(warmCfg)
		if err != nil {
			return nil, err
		}
		tr := m.StartTrace()
		if _, err := echoLoop(m, k, 1024, iters); err != nil {
			return nil, fmt.Errorf("hit-rate loop: %w", err)
		}
		m.StopTrace()
		hits := tr.Metrics().Counter("hv.tlb.hit")
		misses := tr.Metrics().Counter("hv.tlb.miss")
		if hits+misses > 0 {
			rows = append(rows, Row{Series: "TLB hit rate (1K echo)", X: fmt.Sprintf("N=%d", iters),
				Value: 100 * float64(hits) / float64(hits+misses), Unit: "%"})
		}
	}

	// Batched grant hypercalls: a scatter-gather command submission (the
	// Radeon CS pattern — header, descriptor block, 8 scattered chunks)
	// declares its whole grant vector. Per-entry, that is one frontend
	// crossing per vector entry; batched, the vector travels in ONE crossing.
	for _, c := range []struct {
		label string
		cfg   paradice.Config
	}{
		{"per-entry", paradice.Config{Mode: paradice.Polling}},
		{"batched", paradice.Config{Mode: paradice.Polling, TLB: true, GrantBatch: true}},
	} {
		crossings, err := csDeclareCrossings(c.cfg)
		if err != nil {
			return nil, fmt.Errorf("crossings %s: %w", c.label, err)
		}
		rows = append(rows, Row{Series: "grant crossings (8-chunk CS)", X: c.label,
			Value: float64(crossings), Unit: "crossings"})
	}
	return rows, nil
}

// echoLoop issues iters echo ioctls of the given size from one task and
// returns the LAST iteration's latency (steady state for caches and for the
// polling transport alike).
func echoLoop(m *paradice.Machine, k *kernel.Kernel, size, iters int) (sim.Duration, error) {
	var last sim.Duration
	var runErr error
	p, err := k.NewProcess("echo")
	if err != nil {
		return 0, err
	}
	p.SpawnTask("loop", func(t *kernel.Task) {
		fd, err := t.Open(echoPath, 2)
		if err != nil {
			runErr = err
			return
		}
		arg, err := p.Alloc(size)
		if err != nil {
			runErr = err
			return
		}
		if err := p.Mem.Write(arg, make([]byte, size)); err != nil {
			runErr = err
			return
		}
		cmd := echoCmd(size)
		for i := 0; i < iters; i++ {
			start := t.Sim().Now()
			if _, err := t.Ioctl(fd, cmd, arg); err != nil {
				runErr = err
				return
			}
			last = t.Sim().Now().Sub(start)
		}
	})
	m.Run()
	return last, runErr
}

// csDeclareCrossings builds a full Paradice machine with the GPU
// paravirtualized, submits one 8-chunk command stream (7 relocation-style
// chunks plus one IB chunk, every payload at a scattered user address), and
// returns how many frontend grant crossings the submission's declare took.
func csDeclareCrossings(cfg paradice.Config) (uint64, error) {
	m, err := paradice.New(cfg)
	if err != nil {
		return 0, err
	}
	g, err := m.AddGuest("guest1", kernel.Linux)
	if err != nil {
		return 0, err
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		return 0, err
	}
	m = built(m)

	const nchunks = 8
	var before, after uint64
	var runErr error
	p, err := g.K.NewProcess("cs")
	if err != nil {
		return 0, err
	}
	tr := m.StartTrace()
	defer m.StopTrace()
	p.SpawnTask("submit", func(t *kernel.Task) {
		fd, err := t.Open(paradice.PathGPU, 2)
		if err != nil {
			runErr = err
			return
		}
		// Scattered chunk payloads: each allocation lands on its own fresh
		// address, so no two grant entries can coalesce.
		descs := make([]byte, 16*nchunks)
		for i := 0; i < nchunks; i++ {
			kind := uint32(0) // relocation-style: copied, carries no commands
			words := []uint32{0xC0DE0000 + uint32(i)}
			if i == nchunks-1 {
				kind = drm.ChunkIB
				words = []uint32{0} // harmless IB: no recognised opcode words
			}
			payload := make([]byte, len(words)*4)
			for j, w := range words {
				binary.LittleEndian.PutUint32(payload[j*4:], w)
			}
			va, err := p.AllocBytes(payload)
			if err != nil {
				runErr = err
				return
			}
			binary.LittleEndian.PutUint64(descs[16*i:], uint64(va))
			binary.LittleEndian.PutUint32(descs[16*i+8:], uint32(len(words)))
			binary.LittleEndian.PutUint32(descs[16*i+12:], kind)
		}
		descVA, err := p.AllocBytes(descs)
		if err != nil {
			runErr = err
			return
		}
		hdr := make([]byte, 16)
		binary.LittleEndian.PutUint32(hdr[0:], nchunks)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(descVA))
		hdrVA, err := p.AllocBytes(hdr)
		if err != nil {
			runErr = err
			return
		}
		before = tr.Metrics().Counter("cvd.fe.grant.crossings")
		if _, err := t.Ioctl(fd, drm.IoctlCS, hdrVA); err != nil {
			runErr = err
			return
		}
		after = tr.Metrics().Counter("cvd.fe.grant.crossings")
	})
	m.Run()
	if runErr != nil {
		return 0, runErr
	}
	return after - before, nil
}
