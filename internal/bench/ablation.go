package bench

import (
	"fmt"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/workload"
)

// The polling-window ablation. §5.1: "the frontend and backend both poll
// the shared page for 200µs before they go to sleep to wait for interrupts.
// The polling period is chosen empirically and is not currently optimized."
// This experiment makes the trade explicit: a window of zero degenerates to
// the interrupt path; growing it buys back round-trip latency on bursty
// workloads (mouse) and throughput at small batches (netmap) until the
// window covers the workload's inter-operation gaps, after which more
// spinning only burns CPU.

// AblationWindows are the swept polling windows.
var AblationWindows = []sim.Duration{
	0, // sleep immediately: the interrupt transport
	10 * sim.Microsecond,
	50 * sim.Microsecond,
	200 * sim.Microsecond, // the paper's choice
	1000 * sim.Microsecond,
}

func init() {
	// Registered here to keep All() in bench.go authoritative for paper
	// experiments; the ablation is this reproduction's own addition.
	extraExperiments = append(extraExperiments, Experiment{
		ID:    "ablation",
		Title: "Ablation: CVD polling window (§5.1's empirically chosen 200µs)",
		Run:   RunAblation,
	})
}

// extraExperiments holds non-paper experiments appended to All().
var extraExperiments []Experiment

// RunAblation sweeps the polling window across three transport-sensitive
// workloads.
func RunAblation(quick bool) ([]Row, error) {
	noopIters := 2000
	pkts := 50000
	mouseSamples := 100
	if quick {
		noopIters, pkts, mouseSamples = 200, 8000, 20
	}
	var rows []Row
	for _, w := range AblationWindows {
		label := fmt.Sprintf("window=%v", w)
		if w == 0 {
			label = "window=0 (interrupts)"
		}

		// No-op round trip.
		m, k, err := pollGuest(w, paradice.PathGPU)
		if err != nil {
			return nil, err
		}
		rt, err := noopRoundTrip(m, k, noopIters)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Series: "no-op RT", X: label, Value: rt.Microseconds(), Unit: "µs"})

		// netmap at the critical batch size 4.
		m, k, err = pollGuest(w, paradice.PathNetmap)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunPktGen(m.Env, k, 4, pkts, 64)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Series: "netmap batch=4", X: label, Value: res.MPPS, Unit: "Mpps"})

		// Mouse latency (events ~1 ms apart: beyond any window, so only
		// the intra-burst operations benefit).
		m, k, err = pollGuest(w, paradice.PathMouse)
		if err != nil {
			return nil, err
		}
		mres, err := workload.RunMouseLatency(m.Env, k, m.Mouse, mouseSamples)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Series: "mouse latency", X: label, Value: mres.Avg.Microseconds(), Unit: "µs"})
	}
	return rows, nil
}

func pollGuest(window sim.Duration, path string) (*paradice.Machine, *kernel.Kernel, error) {
	if window == 0 {
		// The zero-window endpoint of the sweep: sleep immediately, i.e.
		// the interrupt transport.
		return paradiceGuest(paradice.Config{Mode: paradice.Interrupts}, kernel.Linux, path)
	}
	return paradiceGuest(paradice.Config{Mode: paradice.Polling, PollWindow: window}, kernel.Linux, path)
}
