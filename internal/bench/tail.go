package bench

import (
	"fmt"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/load"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// The tail-latency experiment: open-loop load against one paravirtualized
// device, swept across offered rates up to past saturation. Unlike every
// closed-loop row in the paper's §6 (one client, next request after the
// last response), this measures what a production frontend sees: requests
// arrive on their own schedule, latency is counted from the *scheduled*
// arrival, and the driver VM's ring is allowed to saturate. Two QoS classes
// share the device — a latency-critical "rt" class (small payloads, never
// admission-limited) and a throughput "bulk" class (larger payloads,
// admission-limited to 80 of the 100 ring slots) — so the sweep shows both
// the saturation knee and what the EAGAIN backpressure buys the rt tail
// when the ring fills.
//
// Everything is seeded and on the virtual clock, so the emitted table is
// byte-identical across runs — which is what lets bench-regress gate p99
// and sustained-throughput rows exactly.

// Tail sweep parameters. The sink's serial service stage (base 2 µs +
// 1 µs/KB) gives the device a hard capacity of ~281 kops/s for the 1:3
// rt:bulk mix, so the swept rates run from ~20% load to ~7% past
// saturation.
var (
	tailRates      = []float64{60_000, 120_000, 180_000, 240_000, 300_000}
	tailQuickRates = []float64{60_000, 180_000, 300_000}
)

const (
	tailSinkBase  = 2 * sim.Microsecond
	tailSinkPerKB = 1 * sim.Microsecond
	tailBulkLimit = 80 // bulk admission: shed at this ring occupancy
	tailSeed      = 42
)

func init() {
	extraExperiments = append(extraExperiments, Experiment{
		ID:    "tail",
		Title: "Open-loop tail latency and sustained throughput under mixed QoS load",
		Run:   RunTail,
	})
}

// tailProfile is the swept workload at one offered rate: a 1:3 rt:bulk mix
// of Poisson arrivals spread over many concurrent guest processes.
func tailProfile(rate float64, quick bool) load.Profile {
	clients, duration := 1000, 30*sim.Millisecond
	if quick {
		clients, duration = 200, 10*sim.Millisecond
	}
	return load.Profile{
		Path: load.SinkPath,
		Classes: []load.Class{
			// The SLOs double as the flight recorder's per-class outlier
			// thresholds: rt is latency-critical, bulk merely bounded.
			{Name: "rt", QoS: 0, Size: 256, Weight: 1, SLO: 200 * sim.Microsecond},
			{Name: "bulk", QoS: 2, Size: 2048, Weight: 3, SLO: 1 * sim.Millisecond},
		},
		Arrival:  load.Poisson,
		Rate:     rate,
		Clients:  clients,
		Duration: duration,
		Seed:     tailSeed,
	}
}

// tailLevel runs one load level on a fresh machine and returns the result
// plus the level's flight recorder — armed always-on with the witness
// classes' SLOs as per-class outlier thresholds, feeding the attribution
// rows. Arming never advances the virtual clock, so the latency rows are
// identical with and without it.
func tailLevel(rate float64, quick bool) (*load.Result, *trace.FlightRecorder, error) {
	m, err := paradice.New(paradice.Config{
		Mode:      paradice.Polling,
		GuestRAM:  256 << 20,
		Admission: map[uint8]int{2: tailBulkLimit},
	})
	if err != nil {
		return nil, nil, err
	}
	sink := load.NewSink(m.Env, tailSinkBase, tailSinkPerKB)
	m.DriverK.RegisterDevice(load.SinkPath, sink, sink)
	g, err := m.AddGuest("guest1", kernel.Linux)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Paravirtualize(load.SinkPath); err != nil {
		return nil, nil, err
	}
	built(m)
	profile := tailProfile(rate, quick)
	tr := m.Tracer()
	if tr == nil {
		// Production arming: digests only, no unbounded event retention —
		// a 300k-request level stays O(ring capacity). When paradice-bench
		// -trace already installed a tracer, keep its retention so the
		// Chrome export still works, and just arm the recorder on it.
		tr = m.StartTrace()
		tr.SetEventRetention(false)
		defer m.StopTrace()
	}
	fr := tr.ArmFlightRecorder(trace.FlightConfig{ClassThresholds: profile.Thresholds()})
	gen, err := load.NewGenerator(profile)
	if err != nil {
		return nil, nil, err
	}
	if err := gen.Start(g.K); err != nil {
		return nil, nil, err
	}
	m.Run()
	if !gen.Done() {
		return nil, nil, fmt.Errorf("tail: clients did not drain at %.0f/s", rate)
	}
	res := gen.Result()
	if len(res.Violations) > 0 {
		return nil, nil, fmt.Errorf("tail: %d violations at %.0f/s: %s",
			len(res.Violations), rate, res.Violations[0])
	}
	return res, fr, nil
}

// RunTail sweeps the offered rates and emits, per level, the per-class
// p50/p95/p99/p999, the goodput, and the QoS shed counts — then the
// max-sustained-throughput row: the highest swept rate that still completed
// >= 97% of its offered requests.
func RunTail(quick bool) ([]Row, error) {
	rates := tailRates
	if quick {
		rates = tailQuickRates
	}
	quantiles := []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}}

	var rows []Row
	maxSustained := 0.0
	for _, rate := range rates {
		res, fr, err := tailLevel(rate, quick)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("load=%dk/s", int(rate/1000))
		for i := range res.Classes {
			cs := &res.Classes[i]
			for _, qt := range quantiles {
				rows = append(rows, Row{
					Series: cs.Class.Name + " " + qt.name, X: label,
					Value: cs.Lat.Quantile(qt.q).Microseconds(), Unit: "µs",
					Approx: !cs.Lat.Exact(),
				})
			}
			rows = append(rows, Row{
				Series: "shed " + cs.Class.Name, X: label,
				Value: float64(cs.Throttled + cs.Rejected), Unit: "requests",
			})
			// Critical-path attribution: where the class's p99 lives, hop by
			// hop, from the flight recorder's digests. The " p99" suffix puts
			// these rows under the same bench-regress gate as the end-to-end
			// p99s. Hops that never saw time at this level are omitted.
			for h := trace.Hop(0); h < trace.HopCount; h++ {
				hh := fr.HopLatency(cs.Class.QoS, h)
				if hh == nil || hh.Sum == 0 {
					continue
				}
				rows = append(rows, Row{
					Series: fmt.Sprintf("attr %s %s p99", cs.Class.Name, h), X: label,
					Value: hh.Quantile(0.99).Microseconds(), Unit: "µs",
					Approx: !hh.Exact(),
				})
			}
		}
		// Goodput: the slice of the offered rate that actually completed
		// (clients drain their backlog after the arrival window, so a
		// per-wall-clock rate would overcount under overload).
		goodput := 0.0
		if res.Offered > 0 {
			goodput = rate / 1000 * float64(res.OK()) / float64(res.Offered)
		}
		rows = append(rows, Row{Series: "goodput", X: label, Value: goodput, Unit: "kops/s"})
		if res.Offered > 0 && float64(res.OK()) >= 0.97*float64(res.Offered) && rate > maxSustained {
			maxSustained = rate
		}
	}
	rows = append(rows, Row{
		Series: "max-sustained", X: "goodput>=97%",
		Value: maxSustained / 1000, Unit: "kops/s",
	})
	return rows, nil
}
