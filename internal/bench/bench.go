// Package bench defines the reproduction of every table and figure in the
// paper's evaluation (§6). Each experiment builds the platforms it compares
// (native, direct device assignment, and Paradice in its interrupt, polling,
// FreeBSD-guest, and data-isolation configurations), runs the paper's
// workload, and reports rows in the paper's units alongside the paper's own
// numbers where the paper states them.
//
// Both the testing.B benchmarks at the repository root and the
// paradice-bench command drive these definitions, so the figures in
// EXPERIMENTS.md and the `go test -bench` output come from the same code.
package bench

import (
	"fmt"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/workload"
)

// Row is one data point of an experiment.
type Row struct {
	// Series is the configuration ("Native", "Paradice(P)", ...).
	Series string
	// X is the sweep label ("batch=16", "1024x768", "order=500").
	X string
	// Value is the measured metric.
	Value float64
	// Unit is the metric's unit ("Mpps", "FPS", "s", "µs").
	Unit string
	// Paper is the paper's number for this point, or 0 when the paper
	// shows it only graphically.
	Paper float64
	// Approx marks a quantile row whose histogram spilled its exact-sample
	// reservoir (trace.HistSampleCap): the value is a log2-bucket upper
	// bound, not an exact order statistic. Rendered as a "~" prefix.
	Approx bool `json:",omitempty"`
}

// Experiment is one table or figure.
type Experiment struct {
	ID      string // "fig2", "table1", "noop", ...
	Title   string
	Run     func(quick bool) ([]Row, error)
	IsTable bool // textual table rather than a measured series
}

// All returns every experiment: the paper's tables and figures in paper
// order, followed by this reproduction's own additions (the ablations).
func All() []Experiment {
	return append(paperExperiments(), extraExperiments...)
}

func paperExperiments() []Experiment {
	return []Experiment{
		{ID: "noop", Title: "§6.1.1 no-op file operation forwarding latency", Run: RunNoop},
		{ID: "fig2", Title: "Figure 2: netmap transmit rate, 64-byte packets", Run: RunFig2},
		{ID: "fig3", Title: "Figure 3: OpenGL benchmarks FPS", Run: RunFig3},
		{ID: "fig4", Title: "Figure 4: 3D games FPS at four resolutions", Run: RunFig4},
		{ID: "fig5", Title: "Figure 5: OpenCL matrix multiplication time", Run: RunFig5},
		{ID: "fig6", Title: "Figure 6: concurrent guest VMs sharing the GPU", Run: RunFig6},
		{ID: "mouse", Title: "§6.1.5 mouse latency", Run: RunMouse},
		{ID: "camera", Title: "§6.1.6 camera frame rate", Run: RunCamera},
		{ID: "audio", Title: "§6.1.6 audio playback", Run: RunAudio},
		{ID: "table1", Title: "Table 1: paravirtualized devices and class-specific code", Run: RunTable1, IsTable: true},
		{ID: "table2", Title: "Table 2: code breakdown of this reproduction", Run: RunTable2, IsTable: true},
		{ID: "table3", Title: "Table 3: I/O virtualization solution comparison", Run: RunTable3, IsTable: true},
		{ID: "analyzer", Title: "§4.1 ioctl analyzer on the DRM driver", Run: RunAnalyzer, IsTable: true},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// OnMachine, when non-nil, observes every machine an experiment builds.
// The paradice-bench -trace flag uses it to install a tracer on each one
// and collect the traces after the run; it never alters the measurement
// (tracing reads the virtual clock, it does not advance it).
var OnMachine func(*paradice.Machine)

func built(m *paradice.Machine) *paradice.Machine {
	if OnMachine != nil {
		OnMachine(m)
	}
	return m
}

// --- platform builders ---

func native(cfg paradice.Config) (*paradice.Machine, *kernel.Kernel, error) {
	m, err := paradice.NewNative(cfg)
	if err != nil {
		return nil, nil, err
	}
	return built(m), m.AppKernel(), nil
}

func deviceAssign(cfg paradice.Config) (*paradice.Machine, *kernel.Kernel, error) {
	m, err := paradice.NewDeviceAssignment(cfg)
	if err != nil {
		return nil, nil, err
	}
	return built(m), m.AppKernel(), nil
}

func paradiceGuest(cfg paradice.Config, flavor kernel.Flavor, paths ...string) (*paradice.Machine, *kernel.Kernel, error) {
	m, err := paradice.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	g, err := m.AddGuest("guest1", flavor)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Paravirtualize(paths...); err != nil {
		return nil, nil, err
	}
	return built(m), g.K, nil
}

// gpuConfigs are the four configurations of Figures 4 and 5.
type gpuConfig struct {
	name  string
	build func() (*paradice.Machine, *kernel.Kernel, error)
}

func gpuConfigs(withDI bool) []gpuConfig {
	cfgs := []gpuConfig{
		{"Native", func() (*paradice.Machine, *kernel.Kernel, error) {
			return native(paradice.Config{})
		}},
		{"Device-Assign.", func() (*paradice.Machine, *kernel.Kernel, error) {
			return deviceAssign(paradice.Config{})
		}},
		{"Paradice", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{}, kernel.Linux, paradice.PathGPU)
		}},
	}
	if withDI {
		cfgs = append(cfgs, gpuConfig{"Paradice(DI)", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{DataIsolation: true}, kernel.Linux, paradice.PathGPU)
		}})
	}
	return cfgs
}

// --- §6.1.1 no-op latency ---

// RunNoop measures the added forwarding latency of a no-op file operation.
// The paper: ~35 µs with interrupts (two inter-VM interrupts), ~2 µs with
// polling.
func RunNoop(quick bool) ([]Row, error) {
	iters := 10000
	if quick {
		iters = 500
	}
	var rows []Row
	for _, c := range []struct {
		name  string
		mode  paradice.Mode
		paper float64
	}{
		{"Paradice", paradice.Interrupts, 35},
		{"Paradice(P)", paradice.Polling, 2},
	} {
		m, k, err := paradiceGuest(paradice.Config{Mode: c.mode}, kernel.Linux, paradice.PathGPU)
		if err != nil {
			return nil, err
		}
		rt, err := noopRoundTrip(m, k, iters)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Series: c.name, X: "no-op fileop", Value: rt.Microseconds(), Unit: "µs", Paper: c.paper})
	}
	return rows, nil
}

func noopRoundTrip(m *paradice.Machine, k *kernel.Kernel, iters int) (sim.Duration, error) {
	var rt sim.Duration
	var runErr error
	p, err := k.NewProcess("noop")
	if err != nil {
		return 0, err
	}
	p.SpawnTask("loop", func(t *kernel.Task) {
		fd, err := t.Open(paradice.PathGPU, 2)
		if err != nil {
			runErr = err
			return
		}
		// A 4-byte fence-wait for an already-signaled fence is the closest
		// thing to a no-op the DRM driver exposes; its handler returns
		// immediately. Use the Info ioctl instead: one copy-out.
		arg, _ := p.Alloc(32)
		start := t.Sim().Now()
		for i := 0; i < iters; i++ {
			if _, err := t.Ioctl(fd, infoCmd(), arg); err != nil {
				runErr = err
				return
			}
		}
		rt = t.Sim().Now().Sub(start) / sim.Duration(iters)
	})
	m.Run()
	return rt, runErr
}

// --- Figure 2 ---

// Fig2Batches are the batch sizes of Figure 2.
var Fig2Batches = []int{1, 4, 16, 64, 256}

// RunFig2 sweeps the netmap generator over batch sizes for all five
// configurations of Figure 2.
func RunFig2(quick bool) ([]Row, error) {
	npkts := 300000
	if quick {
		npkts = 20000
	}
	configs := []struct {
		name  string
		build func() (*paradice.Machine, *kernel.Kernel, error)
	}{
		{"Native", func() (*paradice.Machine, *kernel.Kernel, error) { return native(paradice.Config{}) }},
		{"Device-Assign.", func() (*paradice.Machine, *kernel.Kernel, error) { return deviceAssign(paradice.Config{}) }},
		{"Paradice", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{}, kernel.Linux, paradice.PathNetmap)
		}},
		{"Paradice(FL)", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{}, kernel.FreeBSD, paradice.PathNetmap)
		}},
		{"Paradice(P)", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{Mode: paradice.Polling}, kernel.Linux, paradice.PathNetmap)
		}},
	}
	var rows []Row
	for _, c := range configs {
		for _, b := range Fig2Batches {
			m, k, err := c.build()
			if err != nil {
				return nil, err
			}
			res, err := workload.RunPktGen(m.Env, k, b, npkts, 64)
			if err != nil {
				return nil, fmt.Errorf("%s batch %d: %w", c.name, b, err)
			}
			rows = append(rows, Row{Series: c.name, X: fmt.Sprintf("batch=%d", b), Value: res.MPPS, Unit: "Mpps"})
		}
	}
	return rows, nil
}

// --- Figure 3 ---

// RunFig3 runs the three OpenGL microbenchmarks on native, device
// assignment, Paradice, and Paradice with polling.
func RunFig3(quick bool) ([]Row, error) {
	frames := 120
	if quick {
		frames = 25
	}
	configs := []struct {
		name  string
		build func() (*paradice.Machine, *kernel.Kernel, error)
	}{
		{"Native", func() (*paradice.Machine, *kernel.Kernel, error) { return native(paradice.Config{}) }},
		{"Device-Assign.", func() (*paradice.Machine, *kernel.Kernel, error) { return deviceAssign(paradice.Config{}) }},
		{"Paradice", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{}, kernel.Linux, paradice.PathGPU)
		}},
		{"Paradice(P)", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{Mode: paradice.Polling}, kernel.Linux, paradice.PathGPU)
		}},
	}
	specs := []workload.GLSpec{
		workload.GLVertexBufferObjects,
		workload.GLVertexArrays,
		workload.GLDisplayLists,
	}
	var rows []Row
	for _, c := range configs {
		for _, spec := range specs {
			m, k, err := c.build()
			if err != nil {
				return nil, err
			}
			res, err := workload.RunGL(m.Env, k, spec, frames)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", c.name, spec.Name, err)
			}
			rows = append(rows, Row{Series: c.name, X: spec.Name, Value: res.FPS, Unit: "FPS"})
		}
	}
	return rows, nil
}

// --- Figure 4 ---

// RunFig4 runs the three games at four resolutions across the four GPU
// configurations (including device data isolation).
func RunFig4(quick bool) ([]Row, error) {
	frames := 60
	if quick {
		frames = 12
	}
	games := []workload.GameSpec{workload.GameTremulous, workload.GameOpenArena, workload.GameNexuiz}
	resolutions := workload.GameResolutions
	if quick {
		resolutions = []workload.Resolution{resolutions[0], resolutions[3]}
	}
	var rows []Row
	for _, c := range gpuConfigs(true) {
		for _, game := range games {
			for _, r := range resolutions {
				m, k, err := c.build()
				if err != nil {
					return nil, err
				}
				res, err := workload.RunGL(m.Env, k, game.GL(r), frames)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", c.name, game.Name, r, err)
				}
				rows = append(rows, Row{Series: c.name, X: game.Name + " " + r.String(), Value: res.FPS, Unit: "FPS"})
			}
		}
	}
	return rows, nil
}

// --- Figure 5 ---

// Fig5Orders are the matrix orders of Figure 5.
var Fig5Orders = []int{1, 100, 500, 1000}

// RunFig5 times the OpenCL matrix multiplication across the orders and GPU
// configurations, verifying every product.
func RunFig5(quick bool) ([]Row, error) {
	orders := Fig5Orders
	if quick {
		orders = []int{1, 100}
	}
	var rows []Row
	for _, c := range gpuConfigs(true) {
		for _, n := range orders {
			m, k, err := c.build()
			if err != nil {
				return nil, err
			}
			res, err := workload.RunMatmul(m.Env, k, n, int64(n))
			if err != nil {
				return nil, fmt.Errorf("%s order %d: %w", c.name, n, err)
			}
			if !res.Correct {
				return nil, fmt.Errorf("%s order %d: wrong product", c.name, n)
			}
			rows = append(rows, Row{Series: c.name, X: fmt.Sprintf("order=%d", n), Value: res.Elapsed.Seconds(), Unit: "s"})
		}
	}
	return rows, nil
}

// --- Figure 6 ---

// RunFig6 runs the order-500 multiplication from 1, 2, and 3 guest VMs
// concurrently on one shared GPU, five back-to-back runs per guest, and
// reports each guest's average experiment time.
func RunFig6(quick bool) ([]Row, error) {
	order, runs := 500, 5
	if quick {
		order, runs = 96, 2
	}
	var rows []Row
	for nguests := 1; nguests <= 3; nguests++ {
		m, err := paradice.New(paradice.Config{})
		if err != nil {
			return nil, err
		}
		type slot struct {
			res []workload.MatmulResult
			err []error
		}
		slots := make([]slot, nguests)
		for i := 0; i < nguests; i++ {
			g, err := m.AddGuest(fmt.Sprintf("vm%d", i+1), kernel.Linux)
			if err != nil {
				return nil, err
			}
			if err := g.Paravirtualize(paradice.PathGPU); err != nil {
				return nil, err
			}
			slots[i].res = make([]workload.MatmulResult, runs)
			slots[i].err = make([]error, runs)
			// Each guest runs the benchmark `runs` times in a row,
			// simultaneously with the other guests (§6.1.4).
			workload.StartMatmulLoop(g.K, order, runs, slots[i].res, slots[i].err)
		}
		built(m)
		m.Run()
		for i := range slots {
			var total sim.Duration
			for r := 0; r < runs; r++ {
				if slots[i].err[r] != nil {
					return nil, fmt.Errorf("vm%d run %d: %w", i+1, r, slots[i].err[r])
				}
				if !slots[i].res[r].Correct {
					return nil, fmt.Errorf("vm%d run %d: wrong product", i+1, r)
				}
				total += slots[i].res[r].Elapsed
			}
			avg := total / sim.Duration(runs)
			rows = append(rows, Row{
				Series: fmt.Sprintf("VM%d", i+1),
				X:      fmt.Sprintf("guests=%d", nguests),
				Value:  avg.Seconds(), Unit: "s",
			})
		}
	}
	return rows, nil
}

// --- §6.1.5 mouse ---

// RunMouse measures the four mouse-latency configurations.
func RunMouse(quick bool) ([]Row, error) {
	samples := 200
	if quick {
		samples = 30
	}
	configs := []struct {
		name  string
		build func() (*paradice.Machine, *kernel.Kernel, error)
		paper float64
	}{
		{"Native", func() (*paradice.Machine, *kernel.Kernel, error) { return native(paradice.Config{}) }, 39},
		{"Device-Assign.", func() (*paradice.Machine, *kernel.Kernel, error) { return deviceAssign(paradice.Config{}) }, 55},
		{"Paradice", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{}, kernel.Linux, paradice.PathMouse)
		}, 296},
		{"Paradice(P)", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{Mode: paradice.Polling}, kernel.Linux, paradice.PathMouse)
		}, 179},
	}
	var rows []Row
	for _, c := range configs {
		m, k, err := c.build()
		if err != nil {
			return nil, err
		}
		res, err := workload.RunMouseLatency(m.Env, k, m.Mouse, samples)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, Row{Series: c.name, X: "latency", Value: res.Avg.Microseconds(), Unit: "µs", Paper: c.paper})
	}
	return rows, nil
}

// --- §6.1.6 camera ---

// RunCamera measures capture FPS at the three highest MJPG resolutions.
func RunCamera(quick bool) ([]Row, error) {
	frames := 90
	if quick {
		frames = 15
	}
	var rows []Row
	for _, c := range []struct {
		name  string
		build func() (*paradice.Machine, *kernel.Kernel, error)
	}{
		{"Native", func() (*paradice.Machine, *kernel.Kernel, error) { return native(paradice.Config{}) }},
		{"Device-Assign.", func() (*paradice.Machine, *kernel.Kernel, error) { return deviceAssign(paradice.Config{}) }},
		{"Paradice", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{}, kernel.Linux, paradice.PathCamera)
		}},
	} {
		for _, r := range cameraResolutions() {
			m, k, err := c.build()
			if err != nil {
				return nil, err
			}
			res, err := workload.RunCamera(m.Env, k, r, frames)
			if err != nil {
				return nil, fmt.Errorf("%s %dx%d: %w", c.name, r.W, r.H, err)
			}
			if !res.Verified {
				return nil, fmt.Errorf("%s %dx%d: frame corruption", c.name, r.W, r.H)
			}
			rows = append(rows, Row{Series: c.name, X: fmt.Sprintf("%dx%d", r.W, r.H),
				Value: res.FPS, Unit: "FPS", Paper: 29.5})
		}
	}
	return rows, nil
}

// --- §6.1.6 audio ---

// RunAudio plays the same clip on each configuration; the rows report
// playback time, which must be identical (rate-paced by the codec).
func RunAudio(quick bool) ([]Row, error) {
	seconds := 2.0
	if quick {
		seconds = 0.3
	}
	var rows []Row
	for _, c := range []struct {
		name  string
		build func() (*paradice.Machine, *kernel.Kernel, error)
	}{
		{"Native", func() (*paradice.Machine, *kernel.Kernel, error) { return native(paradice.Config{}) }},
		{"Device-Assign.", func() (*paradice.Machine, *kernel.Kernel, error) { return deviceAssign(paradice.Config{}) }},
		{"Paradice", func() (*paradice.Machine, *kernel.Kernel, error) {
			return paradiceGuest(paradice.Config{}, kernel.Linux, paradice.PathAudio)
		}},
	} {
		m, k, err := c.build()
		if err != nil {
			return nil, err
		}
		res, err := workload.RunAudio(m.Env, k, seconds)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, Row{Series: c.name, X: fmt.Sprintf("%.1fs clip", seconds),
			Value: res.Elapsed.Seconds(), Unit: "s", Paper: seconds})
	}
	return rows, nil
}
