package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"paradice/internal/devfile"
	"paradice/internal/device/camera"
	"paradice/internal/driver/drm"
	"paradice/internal/ioctlan"
)

func infoCmd() devfile.IoctlCmd { return drm.IoctlInfo }

func cameraResolutions() []camera.Resolution { return camera.Resolutions }

// RunTable1 reproduces Table 1: the device classes this build
// paravirtualizes, the backing device models of the paper's testbed, and
// the class-specific code sizes. The LoC column reports this repository's
// measured class-specific module sizes next to the paper's counts.
func RunTable1(quick bool) ([]Row, error) {
	classes := []struct {
		class    string
		devices  string
		driver   string
		paperLoC float64
		pkg      string
	}{
		{"GPU", "ATI Radeon HD 6450 (Evergreen model)", "DRM/radeon", 92, "internal/devinfo"},
		{"Input", "Dell USB Mouse / Keyboard", "evdev", 58, "internal/devinfo"},
		{"Camera", "Logitech HD Pro Webcam C920", "V4L2/UVC", 43, "internal/devinfo"},
		{"Audio", "Intel Panther Point HD Audio", "PCM/snd-hda", 37, "internal/devinfo"},
		{"Ethernet", "Intel Gigabit Adapter (netmap)", "netmap/e1000e", 21, "internal/devinfo"},
	}
	var rows []Row
	for _, c := range classes {
		rows = append(rows, Row{
			Series: c.class,
			X:      c.devices + " — " + c.driver,
			Value:  measureDevinfoClass(c.class),
			Unit:   "LoC (class-specific device info)",
			Paper:  c.paperLoC,
		})
	}
	return rows, nil
}

// measureDevinfoClass counts the lines of the class's device-info function
// in this repository — the analogue of the paper's per-class module count.
func measureDevinfoClass(class string) float64 {
	root, ok := repoRoot()
	if !ok {
		return 0
	}
	data, err := os.ReadFile(filepath.Join(root, "internal", "devinfo", "devinfo.go"))
	if err != nil {
		return 0
	}
	marker := map[string]string{
		"GPU": "func InstallGPU", "Input": "func InstallInput",
		"Camera": "func InstallCamera", "Audio": "func InstallAudio",
		"Ethernet": "func InstallNetmapEthernet",
	}[class]
	lines := strings.Split(string(data), "\n")
	count := 0
	in := false
	for _, l := range lines {
		if strings.HasPrefix(l, marker) {
			in = true
		}
		if in {
			count++
			if l == "}" {
				break
			}
		}
	}
	return float64(count)
}

// RunTable2 reproduces Table 2's structure for this repository: measured
// lines of code per component, split generic vs class-specific, mirroring
// the paper's breakdown rows.
func RunTable2(quick bool) ([]Row, error) {
	root, ok := repoRoot()
	if !ok {
		return []Row{{Series: "unavailable", X: "source tree not found at runtime", Unit: "LoC"}}, nil
	}
	components := []struct {
		series string // paper row
		x      string
		dirs   []string
	}{
		{"Generic", "CVD frontend+backend+shared (paper: 3881)", []string{"internal/cvd"}},
		{"Generic", "kernel wrapper stubs (paper: 198)", []string{"internal/kernel"}},
		{"Generic", "hypervisor API + grants (paper: 1349)", []string{"internal/hv", "internal/grant"}},
		{"Generic", "driver ioctl analyzer (paper: 501)", []string{"internal/ioctlan"}},
		{"Class-specific", "device info modules (paper: 251)", []string{"internal/devinfo"}},
		{"Class-specific", "data isolation for the DRM driver (paper: 382)", []string{"internal/driver/drm"}},
		{"Substrate", "simulated memory system / IOMMU / DES kernel", []string{"internal/mem", "internal/iommu", "internal/sim"}},
		{"Substrate", "simulated devices", []string{"internal/device"}},
		{"Substrate", "device drivers", []string{"internal/driver"}},
		{"Substrate", "userspace libraries + workloads", []string{"internal/usrlib", "internal/workload"}},
	}
	var rows []Row
	for _, c := range components {
		var total int
		for _, d := range c.dirs {
			total += countGoLines(filepath.Join(root, d))
		}
		rows = append(rows, Row{Series: c.series, X: c.x, Value: float64(total), Unit: "LoC"})
	}
	return rows, nil
}

// countGoLines counts non-test Go source lines under dir, excluding blank
// lines and comment-only lines — matching the paper's use of CLOC.
func countGoLines(dir string) int {
	total := 0
	_ = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		for _, l := range strings.Split(string(data), "\n") {
			t := strings.TrimSpace(l)
			if t == "" || strings.HasPrefix(t, "//") {
				continue
			}
			total++
		}
		return nil
	})
	return total
}

func repoRoot() (string, bool) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", false
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", false
	}
	return root, true
}

// RunTable3 prints Table 3's qualitative comparison, with Paradice's column
// demonstrated by construction in this repository (sharing by the multi-VM
// experiments, legacy support because none of the simulated devices have
// virtualization hardware, performance by Figures 2-6).
func RunTable3(quick bool) ([]Row, error) {
	type entry struct {
		approach string
		perf     string
		effort   string
		sharing  string
		legacy   string
	}
	entries := []entry{
		{"Emulation", "no", "no", "yes", "yes"},
		{"Direct I/O", "yes", "yes", "no", "yes"},
		{"Self Virt.", "yes", "yes", "yes (limited)", "no"},
		{"Paravirt.", "yes", "no", "yes", "yes"},
		{"Paradice", "yes", "yes", "yes", "yes"},
	}
	var rows []Row
	for _, e := range entries {
		rows = append(rows, Row{
			Series: e.approach,
			X: fmt.Sprintf("high-perf=%s, low-effort=%s, sharing=%s, legacy=%s",
				e.perf, e.effort, e.sharing, e.legacy),
			Unit: "property",
		})
	}
	return rows, nil
}

// RunAnalyzer reports the ioctl analyzer's results on the DRM driver: how
// each command was classified, and the slicing ratio — the reproduction of
// the paper's "760 lines of extracted code" and "nested copies in 14 ioctl
// commands" findings at this driver's scale.
func RunAnalyzer(quick bool) ([]Row, error) {
	progs := drm.IoctlIR()
	sort.Slice(progs, func(i, j int) bool { return progs[i].Name < progs[j].Name })
	var rows []Row
	dynamic := 0
	extracted := 0
	for _, p := range progs {
		spec, err := ioctlan.Analyze(p)
		if err != nil {
			return nil, err
		}
		kind := "static entries"
		if spec.Dynamic {
			kind = "JIT slice (nested copies)"
			dynamic++
			extracted += spec.ExtractedLines
		}
		rows = append(rows, Row{
			Series: p.Name,
			X:      fmt.Sprintf("%s; slice %d of %d stmts", kind, spec.ExtractedLines, spec.OriginalLines),
			Value:  float64(spec.ExtractedLines),
			Unit:   "stmts",
		})
	}
	rows = append(rows, Row{
		Series: "TOTAL",
		X:      fmt.Sprintf("%d of %d commands need JIT execution (paper: 14 of the Radeon set)", dynamic, len(progs)),
		Value:  float64(extracted),
		Unit:   "extracted stmts",
	})
	return rows, nil
}
