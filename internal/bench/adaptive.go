package bench

import (
	"fmt"

	"paradice"
	"paradice/internal/cvd"
	"paradice/internal/kernel"
	"paradice/internal/load"
	"paradice/internal/sim"
)

// The adaptive-transport experiment: the same open-loop sink workload swept
// from far below the poll threshold to past it, under four transports —
// static interrupts, interrupts with multi-entry batching armed, static
// polling, and the adaptive NAPI-style transport. The claim under test is
// the envelope: adaptive must track the BETTER static mode at both ends of
// the sweep, within 10%, while burning no spin at low load.
//
//   - At the low end (2 k/s, inter-arrival ~500 µs, far above the 32 µs
//     poll threshold) the adaptive channel never leaves interrupt stance:
//     its latency matches static interrupts and its spin time is zero,
//     where static polling pays an idle poll window per wake.
//   - At the high end (240 k/s, inter-arrival ~4 µs) the EWMA flips the
//     channel to poll stance within the first dozen posts: its latency
//     matches static polling, where static interrupts pays the inter-VM
//     IRQ round trip per operation.
//
// Everything is seeded and on the virtual clock, so the emitted rows are
// byte-identical across runs and bench-regress gates the envelope ratios
// exactly.

// Adaptive sweep parameters. The 256-byte payload gives the sink a ~2.25 µs
// service time (capacity ~440 kops/s), so the top swept rate is ~55% load —
// deep in poll-stance territory without saturating the ring.
var (
	adaptiveRates      = []float64{2_000, 15_000, 60_000, 150_000, 240_000}
	adaptiveQuickRates = []float64{2_000, 60_000, 240_000}
)

const (
	adaptiveSinkBase  = 2 * sim.Microsecond
	adaptiveSinkPerKB = 1 * sim.Microsecond
	adaptiveSeed      = 91
)

// adaptiveConfigs are the four transports under sweep. The batched config
// arms the multi-entry submission/completion rings on the static interrupt
// path — the amortization story — while the adaptive config deliberately
// leaves batching off: its job here is the latency envelope, and a batch
// window would tax exactly the low-load end the envelope gates.
var adaptiveConfigs = []struct {
	name string
	cfg  paradice.Config
}{
	{"interrupts", paradice.Config{Mode: paradice.Interrupts}},
	{"interrupts+batch", paradice.Config{
		Mode:           paradice.Interrupts,
		CoalesceWindow: 20 * sim.Microsecond,
		BatchSize:      8,
	}},
	{"polling", paradice.Config{Mode: paradice.Polling}},
	{"adaptive", paradice.Config{Mode: paradice.Adaptive}},
}

// adaptiveProfile is the swept workload at one offered rate: one small-payload
// class of Poisson arrivals spread over concurrent guest processes. The client
// count scales with the rate (~3 k/s each): a fixed large pool would open the
// device in a burst at t=0 and flip the adaptive stance to polling even at
// 2 k/s offered load, charging the low-load levels a spin cost that is an
// artifact of the harness, not of the transport under test.
func adaptiveProfile(rate float64, quick bool) load.Profile {
	clients := int(rate / 3000)
	if clients < 1 {
		clients = 1
	}
	duration := 20 * sim.Millisecond
	if quick {
		duration = 8 * sim.Millisecond
	}
	return load.Profile{
		Path: load.SinkPath,
		Classes: []load.Class{
			{Name: "rt", QoS: 0, Size: 256, Weight: 1},
		},
		Arrival:  load.Poisson,
		Rate:     rate,
		Clients:  clients,
		Duration: duration,
		Seed:     adaptiveSeed,
	}
}

// adaptiveOutcome is one (transport, rate) cell of the sweep.
type adaptiveOutcome struct {
	p50       float64 // end-to-end p50, µs
	spinPerOp float64 // (frontend + backend) spin time per completed op, µs
	doorbells float64 // doorbell IRQs actually sent
}

// adaptiveLevel runs one transport at one offered rate on a fresh machine.
func adaptiveLevel(cfg paradice.Config, rate float64, quick bool) (adaptiveOutcome, error) {
	cfg.GuestRAM = 256 << 20
	m, err := paradice.New(cfg)
	if err != nil {
		return adaptiveOutcome{}, err
	}
	sink := load.NewSink(m.Env, adaptiveSinkBase, adaptiveSinkPerKB)
	m.DriverK.RegisterDevice(load.SinkPath, sink, sink)
	g, err := m.AddGuest("guest1", kernel.Linux)
	if err != nil {
		return adaptiveOutcome{}, err
	}
	if err := g.Paravirtualize(load.SinkPath); err != nil {
		return adaptiveOutcome{}, err
	}
	built(m)
	gen, err := load.NewGenerator(adaptiveProfile(rate, quick))
	if err != nil {
		return adaptiveOutcome{}, err
	}
	if err := gen.Start(g.K); err != nil {
		return adaptiveOutcome{}, err
	}
	m.Run()
	if !gen.Done() {
		return adaptiveOutcome{}, fmt.Errorf("adaptive: clients did not drain at %.0f/s", rate)
	}
	res := gen.Result()
	if len(res.Violations) > 0 {
		return adaptiveOutcome{}, fmt.Errorf("adaptive: %d violations at %.0f/s: %s",
			len(res.Violations), rate, res.Violations[0])
	}
	var fe *cvd.Frontend
	var be *cvd.Backend
	for _, f := range g.Frontends {
		fe = f
	}
	for _, b := range g.Backends {
		be = b
	}
	ok := res.OK()
	if ok == 0 {
		return adaptiveOutcome{}, fmt.Errorf("adaptive: no completions at %.0f/s", rate)
	}
	spin := fe.SpinTime + be.SpinTime
	return adaptiveOutcome{
		p50:       res.Classes[0].Lat.Quantile(0.50).Microseconds(),
		spinPerOp: spin.Microseconds() / float64(ok),
		doorbells: float64(fe.DoorbellIRQs),
	}, nil
}

func init() {
	extraExperiments = append(extraExperiments, Experiment{
		ID:    "adaptive",
		Title: "Adaptive transport envelope: batched rings and NAPI-style stance switching under swept load",
		Run:   RunAdaptive,
	})
}

// RunAdaptive sweeps the offered rates across the four transports and emits,
// per level, the per-transport p50, spin per op, and doorbell IRQ count —
// then the three envelope gate rows bench-regress pins:
//
//	envelope/high-vs-best-static  adaptive p50 / min(static p50) at the top rate
//	envelope/low-vs-interrupts    adaptive p50 / interrupt p50 at the bottom rate
//	excess-spin/low-load          adaptive spin − interrupt spin (µs/op, baseline 0)
func RunAdaptive(quick bool) ([]Row, error) {
	rates := adaptiveRates
	if quick {
		rates = adaptiveQuickRates
	}
	outcomes := make(map[string]map[float64]adaptiveOutcome)
	var rows []Row
	for _, rate := range rates {
		label := fmt.Sprintf("load=%dk/s", int(rate/1000))
		for _, c := range adaptiveConfigs {
			out, err := adaptiveLevel(c.cfg, rate, quick)
			if err != nil {
				return nil, err
			}
			if outcomes[c.name] == nil {
				outcomes[c.name] = make(map[float64]adaptiveOutcome)
			}
			outcomes[c.name][rate] = out
			rows = append(rows,
				Row{Series: "p50 " + c.name, X: label, Value: out.p50, Unit: "µs"},
				Row{Series: "spin " + c.name, X: label, Value: out.spinPerOp, Unit: "µs/op"},
				Row{Series: "doorbells " + c.name, X: label, Value: out.doorbells, Unit: "IRQs"},
			)
		}
	}
	low, high := rates[0], rates[len(rates)-1]
	bestStaticHigh := outcomes["interrupts"][high].p50
	if p := outcomes["polling"][high].p50; p < bestStaticHigh {
		bestStaticHigh = p
	}
	rows = append(rows,
		Row{Series: "envelope", X: "high-vs-best-static",
			Value: outcomes["adaptive"][high].p50 / bestStaticHigh, Unit: "ratio"},
		Row{Series: "envelope", X: "low-vs-interrupts",
			Value: outcomes["adaptive"][low].p50 / outcomes["interrupts"][low].p50, Unit: "ratio"},
		Row{Series: "excess-spin", X: "low-load",
			Value: outcomes["adaptive"][low].spinPerOp - outcomes["interrupts"][low].spinPerOp,
			Unit: "µs/op"},
	)
	return rows, nil
}
