package bench

import (
	"fmt"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/load"
	"paradice/internal/sim"
)

// The live-handover experiment: a planned driver-VM handover under sustained
// open-loop load, compared head-to-head against the crash-style
// RestartDriverVM at the same moment of the same workload. The claim under
// test is the tentpole of the handover work: because the successor boots and
// pre-warms while the predecessor still serves, and the switch itself only
// quiesces the rings for the drain window, a planned handover loses zero
// requests and pauses the device for microseconds — where a restart burns
// the full driver-VM boot as an outage and fails every request that arrives
// inside it.
//
// The workload is the PR 6 open-loop generator against the load sink at ~80%
// of the sink's serial capacity, plus a low-rate "witness" writer whose
// >= 2 KiB writes ride the bulk-grant fast path; the witness is what proves
// the successor comes up warm (its map-cache hits are seeded by the handover
// transfer, not by re-faulting).
//
// Everything runs on the virtual clock under fixed seeds, so the emitted
// rows are byte-identical across runs and bench-regress can gate them
// exactly: "failed"/handover must stay 0, downtime must not grow, and the
// warm counters must stay nonzero.

const (
	hoSinkBase  = 2 * sim.Microsecond
	hoSinkPerKB = 1 * sim.Microsecond
	hoSize      = 2048 // 4 µs service => 250 kops/s sink capacity
	hoSeed      = 4242

	// The lifecycle operation fires at this point in the arrival window;
	// prepare then pays the 100 ms successor boot, so the switch (or the
	// restart outage) lands around hoKickAt + CostDriverVMRestart, well
	// inside the arrival window.
	hoKickAt = 1 * sim.Millisecond
)

func init() {
	extraExperiments = append(extraExperiments, Experiment{
		ID:    "handover",
		Title: "Planned driver-VM handover vs restart under open-loop load",
		Run:   RunHandover,
	})
}

// hoProfile is the sustained load during the lifecycle operation: one bulk
// class at ~80% of sink capacity (full mode), open-loop Poisson arrivals.
func hoProfile(quick bool) load.Profile {
	rate, clients, duration := 200_000.0, 600, 120*sim.Millisecond
	if quick {
		rate, clients, duration = 60_000.0, 150, 115*sim.Millisecond
	}
	return load.Profile{
		Path:     load.SinkPath,
		Classes:  []load.Class{{Name: "bulk", QoS: 0, Size: hoSize, Weight: 1}},
		Arrival:  load.Poisson,
		Rate:     rate,
		Clients:  clients,
		Duration: duration,
		Seed:     hoSeed,
	}
}

// hoRig is one fully built machine + workload, ready to run.
type hoRig struct {
	m   *paradice.Machine
	g   *paradice.Guest
	gen *load.Generator

	witnessWrites  int   // completed witness writes
	witnessErrs    int   // failed witness writes (must stay 0 for handover)
	witnessLastErr error // last witness failure, for diagnostics
}

// newHoRig builds the machine (polling + map cache + TLB), registers the
// sink into every driver-VM generation, and starts the generator plus the
// witness writer.
func newHoRig(quick bool) (*hoRig, error) {
	m, err := paradice.New(paradice.Config{
		Mode:     paradice.Polling,
		GuestRAM: 256 << 20,
		MapCache: true,
		TLB:      true,
	})
	if err != nil {
		return nil, err
	}
	sink := load.NewSink(m.Env, hoSinkBase, hoSinkPerKB)
	// The sink must exist in the successor (and any restart replacement)
	// driver kernel too, or the rebind cannot find the device.
	if err := m.OnDriverVMBoot(func(k *kernel.Kernel) error {
		k.RegisterDevice(load.SinkPath, sink, sink)
		return nil
	}); err != nil {
		return nil, err
	}
	g, err := m.AddGuest("guest1", kernel.Linux)
	if err != nil {
		return nil, err
	}
	if err := g.Paravirtualize(load.SinkPath); err != nil {
		return nil, err
	}
	built(m)

	r := &hoRig{m: m, g: g}
	gen, err := load.NewGenerator(hoProfile(quick))
	if err != nil {
		return nil, err
	}
	if err := gen.Start(g.K); err != nil {
		return nil, err
	}
	r.gen = gen

	// The witness writer: one long-lived fd issuing 4 KiB writes every
	// 250 µs for the whole window. Each write is big enough for the
	// bulk-grant map hint, so pre-handover writes populate the predecessor's
	// map cache and post-handover writes prove the successor inherited it.
	proc, err := g.K.NewProcess("witness")
	if err != nil {
		return nil, err
	}
	dur := hoProfile(quick).Duration
	proc.SpawnTask("writer", func(t *kernel.Task) {
		// The open competes with every generator client's open at t=0;
		// EBUSY here is the same startup backpressure the clients retry.
		fd, err := t.Open(load.SinkPath, devfile.ORdWr)
		for attempt := 0; err != nil && attempt < 10000 &&
			(kernel.IsErrno(err, kernel.EBUSY) || kernel.IsErrno(err, kernel.EAGAIN)); attempt++ {
			t.Sim().Sleep(20 * sim.Microsecond)
			fd, err = t.Open(load.SinkPath, devfile.ORdWr)
		}
		if err != nil {
			r.witnessErrs++
			r.witnessLastErr = err
			return
		}
		buf, err := proc.Alloc(4096)
		if err != nil {
			r.witnessErrs++
			r.witnessLastErr = err
			return
		}
		end := t.Sim().Now().Add(dur)
		for t.Sim().Now() < end {
			// EBUSY/EAGAIN are backpressure, not loss: the post-drain replay
			// burst can transiently fill the ring, and a well-behaved app
			// retries exactly as it would under plain overload.
			_, err := t.Write(fd, buf, 4096)
			for attempt := 0; err != nil && attempt < 10000 &&
				(kernel.IsErrno(err, kernel.EBUSY) || kernel.IsErrno(err, kernel.EAGAIN)); attempt++ {
				t.Sim().Sleep(20 * sim.Microsecond)
				_, err = t.Write(fd, buf, 4096)
			}
			if err != nil {
				r.witnessErrs++
				r.witnessLastErr = err
			} else {
				r.witnessWrites++
			}
			t.Sim().Sleep(250 * sim.Microsecond)
		}
		t.Close(fd)
	})
	return r, nil
}

// errorsOf sums the honest-errno failures across classes.
func errorsOf(res *load.Result) uint64 {
	var n uint64
	for i := range res.Classes {
		n += res.Classes[i].Errors
	}
	return n
}

// RunHandover runs the workload twice — once with a planned handover, once
// with RestartDriverVM at the same virtual instant — and reports failed
// requests, downtime, and the handover's replay/warmth counters.
func RunHandover(quick bool) ([]Row, error) {
	// --- run 1: planned handover ---
	ho, err := newHoRig(quick)
	if err != nil {
		return nil, err
	}
	var hoErr error
	ho.m.Env.Spawn("handover-driver", func(p *sim.Proc) {
		p.Sleep(hoKickAt)
		hoErr = ho.m.HandoverDriverVM()
	})
	ho.m.Run()
	if hoErr != nil {
		return nil, fmt.Errorf("handover: %w", hoErr)
	}
	if !ho.gen.Done() {
		return nil, fmt.Errorf("handover: clients did not drain")
	}
	hoRes := ho.gen.Result()
	if len(hoRes.Violations) > 0 {
		return nil, fmt.Errorf("handover: %d violations: %s", len(hoRes.Violations), hoRes.Violations[0])
	}
	eps := ho.m.Handovers()
	if len(eps) != 1 || eps[0].Aborted {
		return nil, fmt.Errorf("handover: expected one committed episode, got %+v", eps)
	}
	ep := eps[0]
	if n := errorsOf(hoRes); n != 0 {
		return nil, fmt.Errorf("handover: %d requests failed during a planned handover", n)
	}
	if ho.witnessErrs != 0 {
		return nil, fmt.Errorf("handover: %d witness writes failed (last: %v)", ho.witnessErrs, ho.witnessLastErr)
	}
	be := ho.g.Backends[load.SinkPath]
	warmHits, _, _ := be.MapCacheStats()
	queued := ho.g.Frontends[load.SinkPath].QueuedPosts

	// --- run 2: crash-style restart at the same instant ---
	rst, err := newHoRig(quick)
	if err != nil {
		return nil, err
	}
	var rstErr error
	var rstDown sim.Duration
	rst.m.Env.Spawn("restart-driver", func(p *sim.Proc) {
		p.Sleep(hoKickAt)
		start := p.Now()
		rstErr = rst.m.RestartDriverVM()
		rstDown = p.Now().Sub(start)
	})
	rst.m.Run()
	if rstErr != nil {
		return nil, fmt.Errorf("restart: %w", rstErr)
	}
	if !rst.gen.Done() {
		return nil, fmt.Errorf("restart: clients did not drain")
	}
	rstRes := rst.gen.Result()
	if len(rstRes.Violations) > 0 {
		return nil, fmt.Errorf("restart: %d violations: %s", len(rstRes.Violations), rstRes.Violations[0])
	}

	return []Row{
		{Series: "failed", X: "handover", Value: float64(errorsOf(hoRes)), Unit: "requests"},
		{Series: "failed", X: "restart", Value: float64(errorsOf(rstRes)), Unit: "requests"},
		{Series: "downtime", X: "handover", Value: ep.Pause.Microseconds(), Unit: "µs"},
		{Series: "downtime", X: "restart", Value: rstDown.Microseconds(), Unit: "µs"},
		{Series: "queued-replayed", X: "handover", Value: float64(queued), Unit: "posts"},
		{Series: "warm map hits", X: "handover", Value: float64(warmHits), Unit: "hits"},
		{Series: "warm reopens", X: "handover", Value: float64(be.WarmReopens), Unit: "files"},
	}, nil
}
