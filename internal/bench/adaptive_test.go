package bench

import "testing"

// findRow returns the value of the (series, x) row, failing the test when
// the experiment did not emit it.
func findRow(t *testing.T, rows []Row, series, x string) float64 {
	t.Helper()
	for _, r := range rows {
		if r.Series == series && r.X == x {
			return r.Value
		}
	}
	t.Fatalf("no row %s/%s", series, x)
	return 0
}

// TestAdaptiveEnvelopeQuick is the acceptance bar for the adaptive
// transport: within 10% of the BETTER static mode at both ends of the load
// sweep, with zero excess spin at the low end. The full-fidelity sweep is
// gated identically by bench-regress against BENCH_9.json.
func TestAdaptiveEnvelopeQuick(t *testing.T) {
	rows, err := RunAdaptive(true)
	if err != nil {
		t.Fatal(err)
	}
	if hi := findRow(t, rows, "envelope", "high-vs-best-static"); hi > 1.10 {
		t.Fatalf("adaptive p50 at the top rate is %.3fx the best static mode, want <= 1.10", hi)
	}
	if lo := findRow(t, rows, "envelope", "low-vs-interrupts"); lo > 1.10 {
		t.Fatalf("adaptive p50 at the bottom rate is %.3fx interrupts, want <= 1.10", lo)
	}
	if spin := findRow(t, rows, "excess-spin", "low-load"); spin != 0 {
		t.Fatalf("adaptive burned %.3f µs/op of spin at 2 k/s where interrupts burn none", spin)
	}
	// The batched static config earns its IRQ amortization at the top rate:
	// strictly fewer doorbells than unbatched interrupts.
	top := "load=240k/s"
	plain := findRow(t, rows, "doorbells interrupts", top)
	batched := findRow(t, rows, "doorbells interrupts+batch", top)
	if batched >= plain {
		t.Fatalf("batching sent %.0f doorbells vs %.0f unbatched at the top rate", batched, plain)
	}
}
