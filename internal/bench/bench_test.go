package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"noop", "fig2", "fig3", "fig4", "fig5", "fig6",
		"mouse", "camera", "audio", "table1", "table2", "table3", "analyzer",
		"ablation", "adaptive", "bulk", "handover", "multivm", "tail", "walkcache"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("fig5"); !ok {
		t.Fatal("fig5 not found")
	}
	if _, ok := Find("fig99"); ok {
		t.Fatal("fig99 found")
	}
}

func TestTable3Rows(t *testing.T) {
	rows, err := RunTable3(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d approaches", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Series != "Paradice" || strings.Contains(last.X, "no") {
		t.Fatalf("Paradice row = %+v; the paper's point is all four yes", last)
	}
}

func TestTable2MeasuresRealCode(t *testing.T) {
	rows, err := RunTable2(true)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, r := range rows {
		total += r.Value
	}
	if total < 5000 {
		t.Fatalf("measured %0.f LoC across components; expected a real tree", total)
	}
}

func TestAnalyzerRowsIncludeVSync(t *testing.T) {
	rows, err := RunAnalyzer(true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Series == "DRM_WAIT_VSYNC" {
			found = true
			if strings.Contains(r.X, "JIT") {
				t.Fatal("vsync wait should be static")
			}
		}
	}
	if !found {
		t.Fatal("analyzer rows missing DRM_WAIT_VSYNC")
	}
}

func TestNoopExperimentQuick(t *testing.T) {
	rows, err := RunNoop(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Value < 30 || rows[0].Value > 40 {
		t.Fatalf("interrupt no-op = %.1fµs", rows[0].Value)
	}
	if rows[1].Value > 4 {
		t.Fatalf("polled no-op = %.1fµs", rows[1].Value)
	}
}
