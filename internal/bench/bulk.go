package bench

import (
	"fmt"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// The bulk-transfer experiment: where does mapping the guest buffer into the
// driver VM (grant-map cache) beat the hypervisor-assisted copy? Mapping
// pays per-page EPT work to establish AND tear down each mapping; the
// assisted copy pays a hypercall plus per-page walks and slower per-byte
// work on every operation. The decisive variable is therefore the REUSE
// rate R — how many operations hit a mapping before the application rotates
// to a different buffer: the per-rotation setup+teardown (2·CostMapPage per
// page) amortizes against a per-operation saving that is itself roughly
// per-page, so the crossover sits near a fixed R (~5 with this model's
// constants) at any buffer size, and higher reuse turns the size axis into
// a widening win. The experiment sweeps both axes. The second half counts
// doorbell IRQs for a burst of concurrent writers with and without
// coalescing.

// BulkSizes are the swept transfer sizes.
var BulkSizes = []int{256, 1024, 4096, 16384, 65536}

// BulkReuses are the swept per-mapping reuse rates.
var BulkReuses = []int{1, 2, 4, 8, 16, 32}

func init() {
	extraExperiments = append(extraExperiments, Experiment{
		ID:    "bulk",
		Title: "Bulk transfer: grant-map cache crossover and doorbell coalescing",
		Run:   RunBulk,
	})
}

// bulkDev is a pure sink in the driver VM: it moves the bytes across the
// VM boundary (the cost under study) and discards them.
type bulkDev struct {
	kernel.BaseOps
	sunk int
}

func (d *bulkDev) Write(c *kernel.FopCtx, src mem.GuestVirt, n int) (int, error) {
	buf := make([]byte, n)
	if err := kernel.CopyFromUser(c, src, buf); err != nil {
		return 0, err
	}
	d.sunk += n
	return n, nil
}

const bulkPath = "/dev/bulk0"

func bulkGuest(cfg paradice.Config) (*paradice.Machine, *kernel.Kernel, *paradice.Guest, error) {
	m, err := paradice.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	dev := &bulkDev{}
	m.DriverK.RegisterDevice(bulkPath, dev, dev)
	g, err := m.AddGuest("guest1", kernel.Linux)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := g.Paravirtualize(bulkPath); err != nil {
		return nil, nil, nil, err
	}
	return built(m), g.K, g, nil
}

// RunBulk produces the copy-vs-map sweeps and the coalescing burst counts.
func RunBulk(quick bool) ([]Row, error) {
	rotations := 8
	if quick {
		rotations = 3
	}
	copyCfg := paradice.Config{Mode: paradice.Polling}
	mapCfg := paradice.Config{Mode: paradice.Polling, MapCache: true,
		MapThreshold: 1} // sweep below the default threshold too
	var rows []Row

	// Size sweep at a reuse rate comfortably past the crossover.
	const sweepReuse = 16
	for _, size := range BulkSizes {
		for _, c := range []struct {
			series string
			cfg    paradice.Config
		}{
			{"assisted copy", copyCfg},
			{fmt.Sprintf("map cache (R=%d)", sweepReuse), mapCfg},
		} {
			m, k, _, err := bulkGuest(c.cfg)
			if err != nil {
				return nil, err
			}
			per, err := bulkWriteLoop(m, k, size, sweepReuse, rotations)
			if err != nil {
				return nil, fmt.Errorf("%s size %d: %w", c.series, size, err)
			}
			rows = append(rows, Row{Series: c.series, X: sizeLabel(size),
				Value: per.Microseconds(), Unit: "µs/op"})
		}
	}

	// Reuse sweep at 16 KB: the crossover itself.
	const sweepSize = 16384
	for _, r := range BulkReuses {
		for _, c := range []struct {
			series string
			cfg    paradice.Config
		}{
			{"assisted copy @16K", copyCfg},
			{"map cache @16K", mapCfg},
		} {
			m, k, _, err := bulkGuest(c.cfg)
			if err != nil {
				return nil, err
			}
			per, err := bulkWriteLoop(m, k, sweepSize, r, rotations)
			if err != nil {
				return nil, fmt.Errorf("%s reuse %d: %w", c.series, r, err)
			}
			rows = append(rows, Row{Series: c.series, X: fmt.Sprintf("R=%d", r),
				Value: per.Microseconds(), Unit: "µs/op"})
		}
	}

	// Doorbell coalescing: 8 writers post in a burst; without a window every
	// post rings the backend, with one the burst shares a single IRQ.
	for _, w := range []sim.Duration{0, 40 * sim.Microsecond} {
		label := "window=0 (off)"
		if w != 0 {
			label = fmt.Sprintf("window=%v", w)
		}
		m, k, g, err := bulkGuest(paradice.Config{CoalesceWindow: w})
		if err != nil {
			return nil, err
		}
		if err := burstWriters(m, k, 8); err != nil {
			return nil, fmt.Errorf("coalesce %s: %w", label, err)
		}
		fe := g.Frontends[bulkPath]
		rows = append(rows, Row{Series: "doorbell IRQs (8-post burst)", X: label,
			Value: float64(fe.DoorbellIRQs), Unit: "IRQs"})
	}
	return rows, nil
}

// bulkWriteLoop writes size bytes reuse·rotations times, rotating between
// two user buffers every `reuse` operations so each grant mapping is hit
// exactly that many times before being torn down, and returns the
// per-operation latency.
func bulkWriteLoop(m *paradice.Machine, k *kernel.Kernel, size, reuse, rotations int) (sim.Duration, error) {
	iters := reuse * rotations
	var per sim.Duration
	var runErr error
	p, err := k.NewProcess("bulk")
	if err != nil {
		return 0, err
	}
	p.SpawnTask("loop", func(t *kernel.Task) {
		fd, err := t.Open(bulkPath, 2)
		if err != nil {
			runErr = err
			return
		}
		var bufs [2]mem.GuestVirt
		for i := range bufs {
			va, err := p.Alloc(size)
			if err != nil {
				runErr = err
				return
			}
			if err := p.Mem.Write(va, make([]byte, size)); err != nil {
				runErr = err
				return
			}
			bufs[i] = va
		}
		start := t.Sim().Now()
		for i := 0; i < iters; i++ {
			if _, err := t.Write(fd, bufs[(i/reuse)%2], size); err != nil {
				runErr = err
				return
			}
		}
		per = t.Sim().Now().Sub(start) / sim.Duration(iters)
	})
	m.Run()
	return per, runErr
}

// burstWriters opens the device once, then has n tasks write 64 bytes each
// in the same instant — the burst the coalescing window batches.
func burstWriters(m *paradice.Machine, k *kernel.Kernel, n int) error {
	var runErr error
	p, err := k.NewProcess("burst")
	if err != nil {
		return err
	}
	opened := m.Env.NewEvent("bulk-opened")
	var fd int
	p.SpawnTask("opener", func(t *kernel.Task) {
		f, err := t.Open(bulkPath, 2)
		if err != nil {
			runErr = err
			return
		}
		fd = f
		opened.Trigger()
	})
	for i := 0; i < n; i++ {
		p.SpawnTask(fmt.Sprintf("w%d", i), func(t *kernel.Task) {
			t.Sim().Wait(opened)
			va, err := p.Alloc(64)
			if err != nil {
				runErr = err
				return
			}
			if _, err := t.Write(fd, va, 64); err != nil {
				runErr = err
				return
			}
		})
	}
	m.Run()
	return runErr
}

func sizeLabel(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
