package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Two same-seed runs of the tail experiment are byte-identical after JSON
// encoding — histogram quantiles, the throughput sweep, and the QoS shed
// counts included. This is the property the bench-regress gate rests on:
// any drift it sees is a code change, never noise.
func TestTailDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick sweeps; skipped in -short")
	}
	run := func() []byte {
		rows, err := RunTail(true)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two same-seed tail runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// The quick sweep carries the rows the gate guards: per-class p99 at every
// load level, and the max-sustained-throughput row.
func TestTailRowShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep; skipped in -short")
	}
	rows, err := RunTail(true)
	if err != nil {
		t.Fatal(err)
	}
	p99 := 0
	sustained := false
	for _, r := range rows {
		switch {
		case r.Series == "rt p99" || r.Series == "bulk p99":
			p99++
			if r.Value <= 0 {
				t.Errorf("%s %s = %v, want > 0", r.Series, r.X, r.Value)
			}
		case r.Series == "max-sustained":
			sustained = true
			if r.Value <= 0 {
				t.Errorf("max-sustained = %v, want > 0", r.Value)
			}
		}
	}
	if want := 2 * len(tailQuickRates); p99 != want {
		t.Errorf("%d p99 rows, want %d", p99, want)
	}
	if !sustained {
		t.Error("no max-sustained row")
	}
}
