package bench

import (
	"fmt"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/load"
	"paradice/internal/sim"
)

// The multi-guest scale-out experiment — this reproduction's Figure 7. The
// paper scales the number of guest VMs sharing one driver VM and reports
// aggregate throughput; here the sweep runs 1→32 guests, each with its own
// sink device and its own open-loop Poisson source at a fixed per-guest
// rate, across the three transports. The machine under test is the sharded
// scale-out configuration: the per-guest devices are pinned round-robin
// across four driver-VM shards and each shard serves its channels through a
// bounded worker pool with DRR fairness — the tentpole machinery this
// experiment exists to measure.
//
// The headline series is scaling efficiency: aggregate throughput at N
// guests divided by N times the single-guest baseline. The gate (enforced
// here and pinned by bench-regress against BENCH_10.json) is that the
// adaptive transport sustains ≥ 0.85 efficiency at 8 guests — aggregate
// throughput at least 6.8× the 1-guest baseline.
//
// Throughput is measured over the makespan (virtual time of the last event,
// which includes draining any backlog past the offered window), so a
// configuration that falls behind at scale shows up as lost efficiency, not
// as a silently stretched run.

// Multi-VM sweep parameters. Each guest offers 12 k/s against its own
// private sink (capacity ~440 kops/s for the 256-byte payload), so the
// devices themselves never saturate: any efficiency loss is transport,
// pool, or shard contention — the thing under test.
var (
	multivmGuests      = []int{1, 2, 4, 8, 16, 32}
	multivmQuickGuests = []int{1, 8}
)

const (
	multivmPerGuestRate = 12_000
	multivmSinkBase     = 2 * sim.Microsecond
	multivmSinkPerKB    = 1 * sim.Microsecond
	multivmSeed         = 173
	multivmMaxShards    = 4
	multivmWorkers      = 4

	// The in-run acceptance gate: adaptive scaling efficiency at 8 guests.
	multivmGateGuests     = 8
	multivmGateEfficiency = 0.85
)

// multivmConfigs are the transports under sweep. Every level runs the full
// scale-out machine: sharded driver VMs and the bounded worker pool.
var multivmConfigs = []struct {
	name string
	mode paradice.Mode
}{
	{"interrupts", paradice.Interrupts},
	{"polling", paradice.Polling},
	{"adaptive", paradice.Adaptive},
}

// multivmSinkPath is guest i's private sink device path.
func multivmSinkPath(i int) string { return fmt.Sprintf("/dev/loadsink%d", i) }

// multivmProfile is one guest's offered load: small-payload Poisson arrivals
// at the fixed per-guest rate, seeded per guest so the arrival processes are
// independent streams, not N copies of one.
func multivmProfile(guest int, quick bool) load.Profile {
	duration := 20 * sim.Millisecond
	if quick {
		duration = 8 * sim.Millisecond
	}
	return load.Profile{
		Path: multivmSinkPath(guest),
		Classes: []load.Class{
			{Name: "rt", QoS: 0, Size: 256, Weight: 1},
		},
		Arrival:  load.Poisson,
		Rate:     multivmPerGuestRate,
		Clients:  4,
		Duration: duration,
		Seed:     multivmSeed + int64(guest),
	}
}

// multivmOutcome is one (transport, guest-count) cell.
type multivmOutcome struct {
	tput   float64 // aggregate completed ops per second of makespan, kops/s
	p99Max float64 // worst per-guest p99, µs
}

// multivmLevel runs one transport at one guest count on a fresh sharded
// machine.
func multivmLevel(mode paradice.Mode, guests int, quick bool) (multivmOutcome, error) {
	shards := guests
	if shards > multivmMaxShards {
		shards = multivmMaxShards
	}
	m, err := paradice.New(paradice.Config{
		Mode: mode,
		// Host RAM scales with the VM population: N guests plus the driver
		// shards plus headroom, 64 MiB each.
		HostRAM:      uint64(guests+shards+2) * (64 << 20),
		GuestRAM:     32 << 20,
		DriverShards: shards,
		Workers:      multivmWorkers,
	})
	if err != nil {
		return multivmOutcome{}, err
	}
	// Each guest gets a private sink, installed in every shard's kernel (the
	// boot hook runs everywhere) and pinned round-robin so the shards split
	// the channel population evenly.
	for i := 0; i < guests; i++ {
		sink := load.NewSink(m.Env, multivmSinkBase, multivmSinkPerKB)
		path := multivmSinkPath(i)
		if err := m.OnDriverVMBoot(func(k *kernel.Kernel) error {
			k.RegisterDevice(path, sink, sink)
			return nil
		}); err != nil {
			return multivmOutcome{}, err
		}
		if err := m.PinDevice(path, i%shards); err != nil {
			return multivmOutcome{}, err
		}
	}
	gens := make([]*load.Generator, guests)
	for i := 0; i < guests; i++ {
		g, err := m.AddGuest(fmt.Sprintf("guest%d", i+1), kernel.Linux)
		if err != nil {
			return multivmOutcome{}, err
		}
		if err := g.Paravirtualize(multivmSinkPath(i)); err != nil {
			return multivmOutcome{}, err
		}
		gen, err := load.NewGenerator(multivmProfile(i, quick))
		if err != nil {
			return multivmOutcome{}, err
		}
		gens[i] = gen
		if err := gen.Start(g.K); err != nil {
			return multivmOutcome{}, err
		}
	}
	built(m)
	m.Run()

	var totalOps uint64
	var p99Max float64
	for i, gen := range gens {
		if !gen.Done() {
			return multivmOutcome{}, fmt.Errorf("multivm: guest %d clients did not drain at %d guests", i, guests)
		}
		res := gen.Result()
		if len(res.Violations) > 0 {
			return multivmOutcome{}, fmt.Errorf("multivm: guest %d: %d violations at %d guests: %s",
				i, len(res.Violations), guests, res.Violations[0])
		}
		ok := res.OK()
		if ok == 0 {
			return multivmOutcome{}, fmt.Errorf("multivm: guest %d completed nothing at %d guests", i, guests)
		}
		totalOps += ok
		if p := res.Classes[0].Lat.Quantile(0.99).Microseconds(); p > p99Max {
			p99Max = p
		}
	}
	makespan := sim.Duration(m.Env.Now()).Seconds()
	if makespan <= 0 {
		return multivmOutcome{}, fmt.Errorf("multivm: empty run at %d guests", guests)
	}
	return multivmOutcome{
		tput:   float64(totalOps) / makespan / 1000,
		p99Max: p99Max,
	}, nil
}

func init() {
	extraExperiments = append(extraExperiments, Experiment{
		ID:    "multivm",
		Title: "Figure 7: multi-guest scale-out across sharded driver VMs with the backend worker pool",
		Run:   RunMultiVM,
	})
}

// RunMultiVM sweeps the guest count across the three transports and emits,
// per level, the aggregate throughput and the worst per-guest p99 — then
// the per-transport scaling-efficiency rows bench-regress pins. Efficiency
// at N is aggregate throughput at N divided by N× the same transport's
// 1-guest throughput; the adaptive transport must clear 0.85 at 8 guests.
func RunMultiVM(quick bool) ([]Row, error) {
	counts := multivmGuests
	if quick {
		counts = multivmQuickGuests
	}
	outcomes := make(map[string]map[int]multivmOutcome)
	var rows []Row
	for _, n := range counts {
		label := fmt.Sprintf("guests=%d", n)
		for _, c := range multivmConfigs {
			out, err := multivmLevel(c.mode, n, quick)
			if err != nil {
				return nil, err
			}
			if outcomes[c.name] == nil {
				outcomes[c.name] = make(map[int]multivmOutcome)
			}
			outcomes[c.name][n] = out
			rows = append(rows,
				Row{Series: "tput " + c.name, X: label, Value: out.tput, Unit: "kops/s"},
				Row{Series: "p99 " + c.name, X: label, Value: out.p99Max, Unit: "µs"},
			)
		}
	}
	for _, c := range multivmConfigs {
		base := outcomes[c.name][counts[0]].tput // counts always starts at 1 guest
		for _, n := range counts {
			if n == 1 {
				continue
			}
			eff := outcomes[c.name][n].tput / (float64(n) * base)
			rows = append(rows, Row{
				Series: "efficiency " + c.name,
				X:      fmt.Sprintf("guests=%d", n),
				Value:  eff,
				Unit:   "ratio",
			})
			if c.name == "adaptive" && n == multivmGateGuests && eff < multivmGateEfficiency {
				return nil, fmt.Errorf(
					"multivm: adaptive scaling efficiency %.3f at %d guests below the %.2f gate (aggregate %.1f kops/s vs 1-guest %.1f kops/s)",
					eff, n, multivmGateEfficiency, outcomes[c.name][n].tput, base)
			}
		}
	}
	return rows, nil
}
