package devfile

import (
	"testing"
	"testing/quick"
)

func TestIoctlEncodeDecode(t *testing.T) {
	c := IOWR('d', 0x26, 48)
	if c.Dir() != DirRW {
		t.Errorf("Dir = %v, want DirRW", c.Dir())
	}
	if c.Size() != 48 {
		t.Errorf("Size = %d, want 48", c.Size())
	}
	if c.Type() != 'd' {
		t.Errorf("Type = %c, want d", c.Type())
	}
	if c.Nr() != 0x26 {
		t.Errorf("Nr = %#x, want 0x26", c.Nr())
	}
}

func TestIoctlDirections(t *testing.T) {
	if IO('x', 1).Dir() != DirNone {
		t.Error("IO should have DirNone")
	}
	if IOR('x', 1, 8).Dir() != DirRead {
		t.Error("IOR should have DirRead")
	}
	if IOW('x', 1, 8).Dir() != DirWrite {
		t.Error("IOW should have DirWrite")
	}
	if IO('x', 1).Size() != 0 {
		t.Error("IO size should be 0")
	}
}

func TestIoctlOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize payload did not panic")
		}
	}()
	IOW('x', 1, 1<<14)
}

// Property: encode/decode is lossless for all valid inputs.
func TestPropertyIoctlRoundtrip(t *testing.T) {
	f := func(typ byte, nr uint8, size uint16, dirRaw uint8) bool {
		size &= maxSize
		dir := IoctlDir(dirRaw & 3)
		c := ioc(dir, typ, nr, uint32(size))
		return c.Dir() == dir && c.Size() == uint32(size) &&
			c.Type() == typ && c.Nr() == nr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIoctlDistinct(t *testing.T) {
	// Commands differing only in nr must be distinct — the CVD frontend
	// keys its analyzer tables on the full command number.
	seen := map[IoctlCmd]bool{}
	for nr := uint8(0); nr < 100; nr++ {
		c := IOWR('d', nr, 32)
		if seen[c] {
			t.Fatalf("duplicate command for nr %d", nr)
		}
		seen[c] = true
	}
}

func TestIoctlString(t *testing.T) {
	got := IOW('d', 2, 16).String()
	want := "_IOW('d',0x2,16)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
