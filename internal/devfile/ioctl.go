// Package devfile defines the device-file vocabulary shared by the guest
// kernels, the device drivers, the CVD paravirtual drivers, and the ioctl
// analyzer: ioctl command-number encoding, poll event masks, and file-open
// flags.
//
// The ioctl encoding mirrors the Linux _IO/_IOR/_IOW/_IOWR macros. Paradice
// leans on this encoding (§4.1): because drivers build command numbers with
// these macros, the CVD frontend can recover the direction and size of the
// commonest ioctl memory operations from the command number alone.
package devfile

import "fmt"

// IoctlCmd is an encoded ioctl command number.
type IoctlCmd uint32

// Direction bits of an ioctl command (who writes, from the kernel's view).
type IoctlDir uint8

// Ioctl directions.
const (
	DirNone  IoctlDir = 0
	DirWrite IoctlDir = 1 // userspace writes, kernel reads (copy_from_user)
	DirRead  IoctlDir = 2 // kernel writes, userspace reads (copy_to_user)
	DirRW    IoctlDir = DirWrite | DirRead
)

// Field widths of the encoding, matching asm-generic/ioctl.h.
const (
	nrBits   = 8
	typeBits = 8
	sizeBits = 14
	dirBits  = 2

	nrShift   = 0
	typeShift = nrShift + nrBits
	sizeShift = typeShift + typeBits
	dirShift  = sizeShift + sizeBits

	maxSize = 1<<sizeBits - 1
)

// IO encodes a command with no argument payload.
func IO(typ byte, nr uint8) IoctlCmd { return ioc(DirNone, typ, nr, 0) }

// IOR encodes a command whose payload the kernel copies out to userspace.
func IOR(typ byte, nr uint8, size uint32) IoctlCmd { return ioc(DirRead, typ, nr, size) }

// IOW encodes a command whose payload the kernel copies in from userspace.
func IOW(typ byte, nr uint8, size uint32) IoctlCmd { return ioc(DirWrite, typ, nr, size) }

// IOWR encodes a command copied in, then out.
func IOWR(typ byte, nr uint8, size uint32) IoctlCmd { return ioc(DirRW, typ, nr, size) }

func ioc(dir IoctlDir, typ byte, nr uint8, size uint32) IoctlCmd {
	if size > maxSize {
		panic(fmt.Sprintf("devfile: ioctl payload %d exceeds %d bytes", size, maxSize))
	}
	return IoctlCmd(uint32(dir)<<dirShift | size<<sizeShift |
		uint32(typ)<<typeShift | uint32(nr)<<nrShift)
}

// Dir returns the direction encoded in the command.
func (c IoctlCmd) Dir() IoctlDir { return IoctlDir(c >> dirShift & (1<<dirBits - 1)) }

// Size returns the payload size encoded in the command.
func (c IoctlCmd) Size() uint32 { return uint32(c) >> sizeShift & maxSize }

// Type returns the driver's magic byte.
func (c IoctlCmd) Type() byte { return byte(c >> typeShift) }

// Nr returns the per-driver command number.
func (c IoctlCmd) Nr() uint8 { return uint8(c >> nrShift) }

func (c IoctlCmd) String() string {
	dir := [...]string{"_IO", "_IOW", "_IOR", "_IOWR"}[c.Dir()]
	return fmt.Sprintf("%s('%c',%#x,%d)", dir, c.Type(), c.Nr(), c.Size())
}

// PollMask is the event set returned by a driver's poll handler.
type PollMask uint16

// Poll events.
const (
	PollIn  PollMask = 0x0001 // readable / events available
	PollOut PollMask = 0x0004 // writable / ring space available
	PollErr PollMask = 0x0008
	PollHup PollMask = 0x0010
)

// OpenFlags are file-open flags.
type OpenFlags uint32

// Open flags.
const (
	ORdOnly   OpenFlags = 0
	OWrOnly   OpenFlags = 1
	ORdWr     OpenFlags = 2
	ONonblock OpenFlags = 0x800
)
