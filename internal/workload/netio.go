package workload

import (
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/usrlib"
)

// PktGenResult is one netmap generator run.
type PktGenResult struct {
	Batch   int
	Packets int
	Elapsed sim.Duration
	// MPPS is the transmit rate in million packets per second.
	MPPS float64
}

// RunPktGen transmits npkts fixed-size packets as fast as possible with one
// poll per batch — the §6.1.2 experiment behind Figure 2.
func RunPktGen(env *sim.Env, k *kernel.Kernel, batch, npkts, pktLen int) (PktGenResult, error) {
	res := PktGenResult{Batch: batch, Packets: npkts}
	var runErr error
	p, err := k.NewProcess("pkt-gen")
	if err != nil {
		return res, err
	}
	p.SpawnTask("tx", func(t *kernel.Task) {
		nm, err := usrlib.OpenNetmap(t, "/dev/netmap")
		if err != nil {
			runErr = err
			return
		}
		defer nm.Close()
		// Pre-fault the mapped area so steady-state measurement excludes
		// the one-time page faults (pkt-gen's warm-up).
		if err := nm.FillBatch(nm.NumSlots-1, pktLen, 0); err != nil {
			runErr = err
			return
		}
		if err := nm.Sync(); err != nil {
			runErr = err
			return
		}
		if err := nm.Drain(); err != nil {
			runErr = err
			return
		}
		// A batch can never exceed the ring's usable capacity.
		if batch >= nm.NumSlots {
			batch = nm.NumSlots - 1
		}
		start := t.Sim().Now()
		sent := 0
		for sent < npkts {
			b := batch
			if npkts-sent < b {
				b = npkts - sent
			}
			// Fill at most what the ring has free (pkt-gen's discipline:
			// never overwrite slots the hardware still owns).
			free, err := nm.Free()
			if err != nil {
				runErr = err
				return
			}
			for free == 0 {
				if err := nm.Sync(); err != nil {
					runErr = err
					return
				}
				if free, err = nm.Free(); err != nil {
					runErr = err
					return
				}
				if free == 0 {
					t.Sim().Advance(5 * sim.Microsecond)
				}
			}
			if free < b {
				b = free
			}
			if err := nm.FillBatch(b, pktLen, byte(sent)); err != nil {
				runErr = err
				return
			}
			if err := nm.Sync(); err != nil {
				runErr = err
				return
			}
			sent += b
		}
		// Count only wire-complete packets: wait for the ring to drain.
		if err := nm.Drain(); err != nil {
			runErr = err
			return
		}
		res.Elapsed = t.Sim().Now().Sub(start)
		res.MPPS = float64(npkts) / res.Elapsed.Seconds() / 1e6
	})
	env.Run()
	return res, runErr
}
