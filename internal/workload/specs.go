// Package workload implements the applications of the paper's evaluation
// (§6): the netmap packet generator, the OpenGL microbenchmarks (VBO /
// Vertex Arrays / Display Lists teapot), the three 3D games' demo loops at
// four resolutions, the OpenCL matrix-multiplication benchmark, the mouse
// latency rig, the GUVCview-style camera loop, and audio playback. Each
// runs as a simulated guest (or native) process issuing file operations,
// and reports the metric the paper's figures plot.
package workload

import "paradice/internal/sim"

// GLSpec characterizes one rendering workload by the three quantities that
// determine its Paradice overhead: GPU work per frame, file operations per
// frame, and per-frame CPU and upload work. Calibrated against the paper's
// native FPS levels (Figures 3 and 4); EXPERIMENTS.md documents the fit.
type GLSpec struct {
	Name string
	// CPUPrep is application-side work per frame.
	CPUPrep sim.Duration
	// DrawCycles is GPU work per frame in engine cycles (1 cycle = 1 ns).
	DrawCycles uint64
	// Ioctls is the number of device-file round trips per frame beyond the
	// draw submission and fence wait (state changes, BO management, ...).
	Ioctls int
	// UploadBytes is per-frame data written to a mapped buffer object
	// (vertex arrays, streamed textures).
	UploadBytes int
}

// The OpenGL microbenchmarks of Figure 3: a full-screen ~6000-polygon
// teapot via three submission APIs. Retained-mode VBO issues the fewest
// operations; Vertex Arrays re-upload geometry each frame; Display Lists
// replay through many small submissions.
var (
	GLVertexBufferObjects = GLSpec{
		Name: "VBO", CPUPrep: 500 * sim.Microsecond,
		DrawCycles: 4_400_000, Ioctls: 23, UploadBytes: 0,
	}
	GLVertexArrays = GLSpec{
		Name: "VA", CPUPrep: 800 * sim.Microsecond,
		DrawCycles: 4_400_000, Ioctls: 33, UploadBytes: 576_000,
	}
	GLDisplayLists = GLSpec{
		Name: "DL", CPUPrep: 1200 * sim.Microsecond,
		DrawCycles: 4_400_000, Ioctls: 43, UploadBytes: 0,
	}
)

// Resolution is a display mode of Figure 4.
type Resolution struct{ W, H int }

// GameResolutions are the four modes the games are tested at.
var GameResolutions = []Resolution{
	{800, 600}, {1024, 768}, {1280, 1024}, {1680, 1050},
}

func (r Resolution) String() string {
	switch {
	case r.W == 800:
		return "800x600"
	case r.W == 1024:
		return "1024x768"
	case r.W == 1280:
		return "1280x1024"
	default:
		return "1680x1050"
	}
}

// GameSpec characterizes one of the paper's 3D games: per-frame GPU work is
// a resolution-independent base (geometry, game logic on the GPU timeline)
// plus fill work proportional to the pixel count.
type GameSpec struct {
	Name string
	// BaseCycles is resolution-independent GPU work per frame.
	BaseCycles uint64
	// CyclesPerPixel is fill/shading work per rendered pixel.
	CyclesPerPixel float64
	// Ioctls is device-file round trips per frame.
	Ioctls int
	// StreamBytes is per-frame texture streaming through mapped BOs.
	StreamBytes int
}

// The three Phoronix-driven games of Figure 4, calibrated to HD 6450-class
// native frame rates.
var (
	GameTremulous = GameSpec{
		Name: "Tremulous", BaseCycles: 10_800_000, CyclesPerPixel: 6.5,
		Ioctls: 28, StreamBytes: 65536,
	}
	GameOpenArena = GameSpec{
		Name: "OpenArena", BaseCycles: 12_000_000, CyclesPerPixel: 7.0,
		Ioctls: 30, StreamBytes: 65536,
	}
	GameNexuiz = GameSpec{
		Name: "Nexuiz", BaseCycles: 24_000_000, CyclesPerPixel: 12.0,
		Ioctls: 34, StreamBytes: 131072,
	}
)

// GL converts a game at a resolution into the generic rendering spec.
func (g GameSpec) GL(r Resolution) GLSpec {
	pixels := float64(r.W * r.H)
	return GLSpec{
		Name:        g.Name + "@" + r.String(),
		CPUPrep:     2 * sim.Millisecond,
		DrawCycles:  g.BaseCycles + uint64(pixels*g.CyclesPerPixel),
		Ioctls:      g.Ioctls,
		UploadBytes: g.StreamBytes,
	}
}
