package workload

import (
	"fmt"
	"math/rand"

	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/usrlib"
)

// GLResult is one rendering benchmark's outcome.
type GLResult struct {
	Spec   GLSpec
	Frames int
	FPS    float64
}

// RunGL renders the workload for the given number of frames on the kernel's
// device file and reports the average FPS (VSync disabled, as in §6.1.3).
func RunGL(env *sim.Env, k *kernel.Kernel, spec GLSpec, frames int) (GLResult, error) {
	res := GLResult{Spec: spec, Frames: frames}
	var runErr error
	p, err := k.NewProcess("gl-" + spec.Name)
	if err != nil {
		return res, err
	}
	p.SpawnTask("render", func(t *kernel.Task) {
		g, err := usrlib.OpenGPU(t, "/dev/dri/card0")
		if err != nil {
			runErr = err
			return
		}
		defer g.Close()
		fb, err := g.CreateBO(1 << 20) // framebuffer
		if err != nil {
			runErr = err
			return
		}
		tex, err := g.CreateBO(1 << 20) // texture/vertex staging
		if err != nil {
			runErr = err
			return
		}
		var texVA mem.GuestVirt
		if spec.UploadBytes > 0 {
			texVA, err = g.MapBO(tex, 1<<20)
			if err != nil {
				runErr = err
				return
			}
		}
		upload := make([]byte, spec.UploadBytes)
		start := t.Sim().Now()
		for f := 0; f < frames; f++ {
			t.Sim().Advance(sim.Duration(spec.CPUPrep))
			if spec.UploadBytes > 0 {
				// Stream geometry/textures through the mapped BO; charge
				// the application-side memcpy.
				for i := range upload {
					upload[i] = byte(f + i)
				}
				if err := p.UserWrite(t, texVA, upload); err != nil {
					runErr = err
					return
				}
				t.Sim().Advance(perf.Copy(spec.UploadBytes, spec.UploadBytes/mem.PageSize+1))
			}
			// The auxiliary per-frame ioctls: state changes, BO bookkeeping.
			for i := 0; i < spec.Ioctls; i++ {
				if _, _, _, err := g.Info(); err != nil {
					runErr = err
					return
				}
			}
			if err := g.Draw(fb, tex, spec.DrawCycles); err != nil {
				runErr = err
				return
			}
		}
		elapsed := t.Sim().Now().Sub(start)
		res.FPS = float64(frames) / elapsed.Seconds()
	})
	env.Run()
	return res, runErr
}

// MatmulResult is one OpenCL benchmark run.
type MatmulResult struct {
	Order   int
	Elapsed sim.Duration
	Correct bool
}

// CLSetupTime is the host-side OpenCL setup the paper's "experiment time"
// includes (context creation, kernel compilation) — the floor visible at
// small matrix orders in Figure 5.
const CLSetupTime = 150 * sim.Millisecond

// RunMatmul executes the Figure 5/6 benchmark: multiply two random order-n
// matrices on the GPU, measuring from host setup until the result matrix is
// back, and verify the product against a CPU reference.
func RunMatmul(env *sim.Env, k *kernel.Kernel, order int, seed int64) (MatmulResult, error) {
	res := MatmulResult{Order: order}
	var runErr error
	job := StartMatmul(k, order, seed, &res, &runErr)
	_ = job
	env.Run()
	return res, runErr
}

// StartMatmul spawns the benchmark without driving the simulation, so
// several guests can run it concurrently (Figure 6). The result lands in
// res once the simulation is driven to completion.
func StartMatmul(k *kernel.Kernel, order int, seed int64, res *MatmulResult, runErr *error) *kernel.Process {
	p, err := k.NewProcess(fmt.Sprintf("opencl-%d", order))
	if err != nil {
		*runErr = err
		return nil
	}
	p.SpawnTask("host", func(t *kernel.Task) {
		rng := rand.New(rand.NewSource(seed))
		n := order
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		for i := range a {
			a[i] = rng.Float32()
			b[i] = rng.Float32()
		}
		start := t.Sim().Now()
		t.Sim().Advance(CLSetupTime)
		g, err := usrlib.OpenGPU(t, "/dev/dri/card0")
		if err != nil {
			*runErr = err
			return
		}
		defer g.Close()
		bytes := uint64(n) * uint64(n) * 4
		mapLen := (bytes + mem.PageSize - 1) &^ (mem.PageSize - 1)
		var handles [3]uint32
		var vas [3]mem.GuestVirt
		for i := range handles {
			h, err := g.CreateBO(bytes)
			if err != nil {
				*runErr = err
				return
			}
			handles[i] = h
			va, err := g.MapBO(h, mapLen)
			if err != nil {
				*runErr = err
				return
			}
			vas[i] = va
		}
		if err := g.WriteF32(vas[0], a); err != nil {
			*runErr = err
			return
		}
		if err := g.WriteF32(vas[1], b); err != nil {
			*runErr = err
			return
		}
		t.Sim().Advance(2 * perf.Copy(int(bytes), int(bytes)/mem.PageSize+1))
		if err := g.Compute(handles[0], handles[1], handles[2], n); err != nil {
			*runErr = err
			return
		}
		got, err := g.ReadF32(vas[2], n*n)
		if err != nil {
			*runErr = err
			return
		}
		t.Sim().Advance(perf.Copy(int(bytes), int(bytes)/mem.PageSize+1))
		res.Elapsed = t.Sim().Now().Sub(start)
		res.Correct = verifyMatmul(a, b, got, n)
	})
	return p
}

// StartMatmulLoop spawns one guest application that runs the benchmark
// `runs` times back to back (the §6.1.4 concurrency experiment executes it
// "5 times in a row from each guest VM simultaneously"). Results land in
// res/errs once the simulation is driven to completion.
func StartMatmulLoop(k *kernel.Kernel, order, runs int, res []MatmulResult, errs []error) {
	p, err := k.NewProcess("opencl-loop")
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return
	}
	p.SpawnTask("host", func(t *kernel.Task) {
		for r := 0; r < runs; r++ {
			res[r], errs[r] = runMatmulOnce(t, order, int64(r+1)*7919)
			if errs[r] != nil {
				return
			}
		}
	})
}

// runMatmulOnce is the benchmark body executed by an already-running task.
func runMatmulOnce(t *kernel.Task, order int, seed int64) (MatmulResult, error) {
	res := MatmulResult{Order: order}
	rng := rand.New(rand.NewSource(seed))
	n := order
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	start := t.Sim().Now()
	t.Sim().Advance(CLSetupTime)
	g, err := usrlib.OpenGPU(t, "/dev/dri/card0")
	if err != nil {
		return res, err
	}
	defer g.Close()
	bytes := uint64(n) * uint64(n) * 4
	mapLen := (bytes + mem.PageSize - 1) &^ (mem.PageSize - 1)
	var handles [3]uint32
	var vas [3]mem.GuestVirt
	for i := range handles {
		h, err := g.CreateBO(bytes)
		if err != nil {
			return res, err
		}
		handles[i] = h
		va, err := g.MapBO(h, mapLen)
		if err != nil {
			return res, err
		}
		vas[i] = va
	}
	if err := g.WriteF32(vas[0], a); err != nil {
		return res, err
	}
	if err := g.WriteF32(vas[1], b); err != nil {
		return res, err
	}
	t.Sim().Advance(2 * perf.Copy(int(bytes), int(bytes)/mem.PageSize+1))
	if err := g.Compute(handles[0], handles[1], handles[2], n); err != nil {
		return res, err
	}
	got, err := g.ReadF32(vas[2], n*n)
	if err != nil {
		return res, err
	}
	t.Sim().Advance(perf.Copy(int(bytes), int(bytes)/mem.PageSize+1))
	for i := range vas {
		if err := g.UnmapBO(vas[i], mapLen); err != nil {
			return res, err
		}
	}
	res.Elapsed = t.Sim().Now().Sub(start)
	res.Correct = verifyMatmul(a, b, got, n)
	return res, nil
}

// verifyMatmul checks a sample of result entries against a CPU reference
// (the full check for small orders).
func verifyMatmul(a, b, got []float32, n int) bool {
	check := func(i, j int) bool {
		var want float32
		for k := 0; k < n; k++ {
			want += a[i*n+k] * b[k*n+j]
		}
		diff := want - got[i*n+j]
		if diff < 0 {
			diff = -diff
		}
		limit := float32(n) * 1e-4
		return diff <= limit
	}
	if n <= 64 {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !check(i, j) {
					return false
				}
			}
		}
		return true
	}
	for s := 0; s < 256; s++ {
		i := (s * 2654435761) % n
		j := (s * 40503) % n
		if !check(i, j) {
			return false
		}
	}
	return true
}
