package workload

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/device/camera"
	"paradice/internal/device/input"
	"paradice/internal/driver/evdev"
	"paradice/internal/driver/pcm"
	"paradice/internal/driver/uvc"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// MouseResult is the §6.1.5 latency measurement.
type MouseResult struct {
	Samples int
	// Avg is the mean latency from the event being reported to the device
	// driver to the application's read completing.
	Avg sim.Duration
}

// RunMouseLatency measures input latency: an X-server-style reader loops
// poll -> read -> read-until-EAGAIN on the event device while the mouse
// emits motion at a fixed rate.
func RunMouseLatency(env *sim.Env, k *kernel.Kernel, mouse *input.Device, samples int) (MouseResult, error) {
	res := MouseResult{Samples: samples}
	var runErr error
	p, err := k.NewProcess("xserver")
	if err != nil {
		return res, err
	}
	var total sim.Duration
	p.SpawnTask("eventloop", func(t *kernel.Task) {
		fd, err := t.Open("/dev/input/event0", devfile.ORdOnly|devfile.ONonblock)
		if err != nil {
			runErr = err
			return
		}
		buf, err := p.Alloc(evdev.EventSize * 16)
		if err != nil {
			runErr = err
			return
		}
		got := 0
		for got < samples {
			if _, err := t.Poll(fd, devfile.PollIn, -1); err != nil {
				runErr = err
				return
			}
			for {
				n, err := t.Read(fd, buf, evdev.EventSize*16)
				if kernel.IsErrno(err, kernel.EAGAIN) {
					break
				}
				if err != nil {
					runErr = err
					return
				}
				raw := make([]byte, n)
				if err := p.Mem.Read(buf, raw); err != nil {
					runErr = err
					return
				}
				for off := 0; off+evdev.EventSize <= n; off += evdev.EventSize {
					ev := evdev.DecodeEvent(raw[off:])
					total += t.Sim().Now().Sub(ev.At)
					got++
				}
			}
		}
		res.Avg = total / sim.Duration(samples)
	})
	// The mouse moves once per millisecond; latency is rate-independent
	// ("no matter how fast the mouse moves").
	for i := 0; i < samples; i++ {
		mouse.InjectAt(env.Now().Add(sim.Duration(i+1)*sim.Millisecond), input.EvRel, 0, int32(i))
	}
	env.Run()
	return res, runErr
}

// CameraResult is the §6.1.6 capture measurement.
type CameraResult struct {
	Res    camera.Resolution
	Frames int
	FPS    float64
	// Verified reports that every sampled frame byte matched the sensor's
	// test pattern after crossing the whole stack.
	Verified bool
}

// RunCamera captures frames GUVCview-style: negotiate the format, map four
// driver buffers, and run the qbuf/dqbuf loop.
func RunCamera(env *sim.Env, k *kernel.Kernel, r camera.Resolution, frames int) (CameraResult, error) {
	res := CameraResult{Res: r, Frames: frames, Verified: true}
	var runErr error
	p, err := k.NewProcess("guvcview")
	if err != nil {
		return res, err
	}
	p.SpawnTask("capture", func(t *kernel.Task) {
		fd, err := t.Open("/dev/video0", devfile.ORdWr)
		if err != nil {
			runErr = err
			return
		}
		defer t.Close(fd)
		arg, _ := p.Alloc(32)
		put := func(vals ...uint32) {
			b := make([]byte, len(vals)*4)
			for i, v := range vals {
				binary.LittleEndian.PutUint32(b[i*4:], v)
			}
			if err := p.Mem.Write(arg, b); err != nil {
				runErr = err
			}
		}
		get := func(n int) []byte {
			b := make([]byte, n)
			if err := p.Mem.Read(arg, b); err != nil {
				runErr = err
			}
			return b
		}
		put(uint32(r.W), uint32(r.H), 0, 0)
		if _, err := t.Ioctl(fd, uvc.VidiocSFmt, arg); err != nil {
			runErr = err
			return
		}
		size := binary.LittleEndian.Uint32(get(16)[8:])
		const nbufs = 4
		put(nbufs, 0)
		if _, err := t.Ioctl(fd, uvc.VidiocReqbufs, arg); err != nil {
			runErr = err
			return
		}
		mapLen := (uint64(size) + mem.PageSize - 1) &^ (mem.PageSize - 1)
		var vas [nbufs]mem.GuestVirt
		for i := 0; i < nbufs; i++ {
			put(uint32(i), 0, 0, 0, 0, 0)
			if _, err := t.Ioctl(fd, uvc.VidiocQuerybuf, arg); err != nil {
				runErr = err
				return
			}
			pgoff := binary.LittleEndian.Uint64(get(24)[8:])
			va, err := t.Mmap(fd, mapLen, pgoff)
			if err != nil {
				runErr = err
				return
			}
			vas[i] = va
		}
		for i := 0; i < nbufs; i++ {
			put(uint32(i), 0)
			if _, err := t.Ioctl(fd, uvc.VidiocQbuf, arg); err != nil {
				runErr = err
				return
			}
		}
		if _, err := t.Ioctl(fd, uvc.VidiocStreamOn, 0); err != nil {
			runErr = err
			return
		}
		start := t.Sim().Now()
		for f := 0; f < frames; f++ {
			if _, err := t.Ioctl(fd, uvc.VidiocDqbuf, arg); err != nil {
				runErr = err
				return
			}
			out := get(8)
			idx := binary.LittleEndian.Uint32(out[0:])
			seq := binary.LittleEndian.Uint32(out[4:])
			// Spot-check the frame pattern through the mapped buffer.
			probe := make([]byte, 16)
			if err := p.UserRead(t, vas[idx]+100, probe); err != nil {
				runErr = err
				return
			}
			for i, b := range probe {
				if b != camera.FramePattern(seq, 100+i) {
					res.Verified = false
				}
			}
			put(idx, 0)
			if _, err := t.Ioctl(fd, uvc.VidiocQbuf, arg); err != nil {
				runErr = err
				return
			}
		}
		elapsed := t.Sim().Now().Sub(start)
		if _, err := t.Ioctl(fd, uvc.VidiocStreamOff, 0); err != nil {
			runErr = err
			return
		}
		res.FPS = float64(frames) / elapsed.Seconds()
	})
	env.Run()
	return res, runErr
}

// AudioResult is the §6.1.6 playback measurement.
type AudioResult struct {
	// Elapsed is total playback time for the file.
	Elapsed sim.Duration
	// Bytes is the PCM data written.
	Bytes int
}

// RunAudio plays seconds of 48 kHz 16-bit stereo audio and measures the
// time until the device has drained it.
func RunAudio(env *sim.Env, k *kernel.Kernel, seconds float64) (AudioResult, error) {
	var res AudioResult
	var runErr error
	p, err := k.NewProcess("aplay")
	if err != nil {
		return res, err
	}
	p.SpawnTask("play", func(t *kernel.Task) {
		fd, err := t.Open("/dev/snd/pcmC0D0p", devfile.OWrOnly)
		if err != nil {
			runErr = err
			return
		}
		defer t.Close(fd)
		arg, _ := p.Alloc(8)
		hw := make([]byte, 8)
		binary.LittleEndian.PutUint32(hw[0:], 48000)
		binary.LittleEndian.PutUint32(hw[4:], 4)
		if err := p.Mem.Write(arg, hw); err != nil {
			runErr = err
			return
		}
		if _, err := t.Ioctl(fd, pcm.IoctlHwParams, arg); err != nil {
			runErr = err
			return
		}
		total := int(seconds * 48000 * 4)
		chunk := 16384
		buf, _ := p.Alloc(chunk)
		sample := make([]byte, chunk)
		for i := range sample {
			sample[i] = byte(i * 7)
		}
		if err := p.Mem.Write(buf, sample); err != nil {
			runErr = err
			return
		}
		start := t.Sim().Now()
		for written := 0; written < total; {
			n := chunk
			if total-written < n {
				n = total - written
			}
			w, err := t.Write(fd, buf, n)
			if err != nil {
				runErr = err
				return
			}
			written += w
		}
		if _, err := t.Ioctl(fd, pcm.IoctlDrain, 0); err != nil {
			runErr = err
			return
		}
		res.Elapsed = t.Sim().Now().Sub(start)
		res.Bytes = total
	})
	env.Run()
	return res, runErr
}
