package workload_test

import (
	"testing"

	"paradice"
	"paradice/internal/sim"
	"paradice/internal/workload"
)

func nativeMachine(t testing.TB) *paradice.Machine {
	t.Helper()
	m, err := paradice.NewNative(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGameSpecScalesWithResolution(t *testing.T) {
	g := workload.GameTremulous
	lo := g.GL(workload.GameResolutions[0])
	hi := g.GL(workload.GameResolutions[3])
	if hi.DrawCycles <= lo.DrawCycles {
		t.Fatalf("cycles did not grow: %d -> %d", lo.DrawCycles, hi.DrawCycles)
	}
	if lo.Name != "Tremulous@800x600" {
		t.Fatalf("name = %s", lo.Name)
	}
}

func TestRunGLNativeFPSBands(t *testing.T) {
	m := nativeMachine(t)
	res, err := workload.RunGL(m.Env, m.AppKernel(), workload.GLVertexBufferObjects, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Native VBO teapot: high-100s FPS, like the paper's Figure 3 scale.
	if res.FPS < 150 || res.FPS > 250 {
		t.Fatalf("native VBO FPS = %.1f", res.FPS)
	}
	if res.Frames != 40 {
		t.Fatalf("frames = %d", res.Frames)
	}
}

func TestRunGLOrderingAcrossSpecs(t *testing.T) {
	fps := map[string]float64{}
	for _, spec := range []workload.GLSpec{
		workload.GLVertexBufferObjects, workload.GLVertexArrays, workload.GLDisplayLists,
	} {
		m := nativeMachine(t)
		res, err := workload.RunGL(m.Env, m.AppKernel(), spec, 25)
		if err != nil {
			t.Fatal(err)
		}
		fps[spec.Name] = res.FPS
	}
	if !(fps["VBO"] > fps["VA"] && fps["VA"] > fps["DL"]) {
		t.Fatalf("benchmark ordering wrong: %v", fps)
	}
}

func TestMatmulSeedsChangeData(t *testing.T) {
	m1 := nativeMachine(t)
	r1, err := workload.RunMatmul(m1.Env, m1.AppKernel(), 16, 1)
	if err != nil || !r1.Correct {
		t.Fatalf("seed 1: %+v %v", r1, err)
	}
	m2 := nativeMachine(t)
	r2, err := workload.RunMatmul(m2.Env, m2.AppKernel(), 16, 2)
	if err != nil || !r2.Correct {
		t.Fatalf("seed 2: %+v %v", r2, err)
	}
	// Deterministic per seed: repeat of seed 1 matches exactly.
	m3 := nativeMachine(t)
	r3, err := workload.RunMatmul(m3.Env, m3.AppKernel(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Elapsed != r1.Elapsed {
		t.Fatalf("nondeterministic: %v vs %v", r1.Elapsed, r3.Elapsed)
	}
}

func TestMatmulTimeDominatedBySetupAtTinyOrders(t *testing.T) {
	m := nativeMachine(t)
	res, err := workload.RunMatmul(m.Env, m.AppKernel(), 1, 5)
	if err != nil || !res.Correct {
		t.Fatalf("%+v %v", res, err)
	}
	// Figure 5's flat left side: the ~150ms host setup dominates order 1.
	if res.Elapsed < workload.CLSetupTime || res.Elapsed > workload.CLSetupTime+sim.Duration(50*sim.Millisecond) {
		t.Fatalf("order-1 time %v, want ~%v", res.Elapsed, workload.CLSetupTime)
	}
}

func TestPktGenClampsOversizeBatch(t *testing.T) {
	m := nativeMachine(t)
	res, err := workload.RunPktGen(m.Env, m.AppKernel(), 10_000, 3000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.MPPS <= 0 || res.MPPS > 1.5 {
		t.Fatalf("MPPS = %.3f with an oversize batch", res.MPPS)
	}
	if m.NIC.TxPackets < 3000 {
		t.Fatalf("tx = %d", m.NIC.TxPackets)
	}
}

func TestPktGenLargerPacketsLowerRate(t *testing.T) {
	rate := func(size int) float64 {
		m := nativeMachine(t)
		res, err := workload.RunPktGen(m.Env, m.AppKernel(), 64, 5000, size)
		if err != nil {
			t.Fatal(err)
		}
		return res.MPPS
	}
	small, big := rate(64), rate(1500)
	if big >= small {
		t.Fatalf("1500B rate %.3f >= 64B rate %.3f", big, small)
	}
	// 1500B wire time ≈ 12.2µs → ~0.082 Mpps.
	if big < 0.07 || big > 0.1 {
		t.Fatalf("1500B rate = %.3f Mpps, want ~0.082", big)
	}
}

func TestCameraWorkloadDetectsCorruption(t *testing.T) {
	m := nativeMachine(t)
	res, err := workload.RunCamera(m.Env, m.AppKernel(), struct{ W, H int }{1600, 896}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.FPS < 29 {
		t.Fatalf("camera: %+v", res)
	}
}

func TestAudioScalesWithClipLength(t *testing.T) {
	short := runAudio(t, 0.2)
	long := runAudio(t, 0.4)
	ratio := float64(long) / float64(short)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("doubling the clip changed time by %.2fx", ratio)
	}
}

func runAudio(t testing.TB, secs float64) sim.Duration {
	t.Helper()
	m := nativeMachine(t)
	res, err := workload.RunAudio(m.Env, m.AppKernel(), secs)
	if err != nil {
		t.Fatal(err)
	}
	return res.Elapsed
}

func TestMouseWorkloadCountsAllSamples(t *testing.T) {
	m := nativeMachine(t)
	res, err := workload.RunMouseLatency(m.Env, m.AppKernel(), m.Mouse, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 25 || res.Avg <= 0 {
		t.Fatalf("%+v", res)
	}
}
