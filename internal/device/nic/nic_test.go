package nic

import (
	"testing"

	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

func newRig(t testing.TB) (*NIC, *sim.Env, *mem.PhysMem, mem.SysPhys) {
	t.Helper()
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	ram := phys.NewAllocator("ram", 0x1000_0000, 64*mem.PageSize)
	base, err := ram.AllocPages(8)
	if err != nil {
		t.Fatal(err)
	}
	n := New(env)
	dom := iommu.NewDomain("nic")
	if err := dom.MapRange(0x10000, base, 8, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	n.Connect(&iommu.DMA{Dom: dom, Phys: phys})
	return n, env, phys, base
}

func TestTransmitReadsPacketBytes(t *testing.T) {
	n, env, phys, base := newRig(t)
	pkt := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := phys.Write(base+100, pkt); err != nil {
		t.Fatal(err)
	}
	n.EnqueueTx(0x10064, 4)
	env.Run()
	if n.TxPackets != 1 || n.TxBytes != 4 {
		t.Fatalf("tx = %d pkts %d bytes", n.TxPackets, n.TxBytes)
	}
	want := uint32(0)
	for _, b := range pkt {
		want = want*31 + uint32(b)
	}
	if n.Checksum != want {
		t.Fatalf("checksum %#x, want %#x — device did not read the real bytes", n.Checksum, want)
	}
}

func TestWireRateModel(t *testing.T) {
	n, env, _, _ := newRig(t)
	// 100 minimum-size packets: descriptor-bound at 820ns each.
	for i := 0; i < 100; i++ {
		n.EnqueueTx(0x10000, 64)
	}
	env.Run()
	want := 100 * DescriptorCost
	if got := env.Now(); got != sim.Time(want) {
		t.Fatalf("100 small packets took %v, want %v", got, want)
	}
	// One 1500-byte packet: wire-bound.
	start := env.Now()
	n.EnqueueTx(0x10000, 1500)
	env.Run()
	wire := sim.Duration((1500+FrameOverheadBytes)*8) * sim.Nanosecond
	if got := env.Now().Sub(start); got != wire {
		t.Fatalf("1500B packet took %v, want %v", got, wire)
	}
}

func TestDMAFaultDropsPacket(t *testing.T) {
	n, env, _, _ := newRig(t)
	n.EnqueueTx(0x99000, 64) // outside the mapped range
	env.Run()
	if n.DMAFaults != 1 || n.TxPackets != 0 {
		t.Fatalf("faults=%d tx=%d", n.DMAFaults, n.TxPackets)
	}
}

func TestCompletionCallbackPerPacket(t *testing.T) {
	n, env, _, _ := newRig(t)
	done := 0
	n.OnTxComplete(func() { done++ })
	for i := 0; i < 5; i++ {
		n.EnqueueTx(0x10000, 64)
	}
	env.Run()
	if done != 5 {
		t.Fatalf("completions = %d, want 5", done)
	}
	if n.Pending() != 0 {
		t.Fatalf("pending = %d", n.Pending())
	}
}

func TestEnginePicksUpLateWork(t *testing.T) {
	n, env, _, _ := newRig(t)
	env.After(50*sim.Microsecond, func() { n.EnqueueTx(0x10000, 64) })
	env.Run()
	if n.TxPackets != 1 {
		t.Fatalf("tx = %d", n.TxPackets)
	}
	if env.Now() < sim.Time(50*sim.Microsecond)+sim.Time(DescriptorCost) {
		t.Fatalf("finished at %v, too early", env.Now())
	}
}
