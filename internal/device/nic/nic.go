// Package nic simulates an Intel gigabit Ethernet adapter (the e1000e of
// the paper's testbed) as used by netmap: a TX queue the driver feeds with
// buffer descriptors, a DMA engine that reads packet bytes from system
// memory through the IOMMU, and a wire model that drains packets at the
// hardware's sustained small-packet rate.
package nic

import (
	"paradice/internal/iommu"
	"paradice/internal/sim"
)

// Wire and hardware model, calibrated to the paper's Figure 2: the e1000e
// sustains ~1.2 Mpps for 64-byte frames (descriptor processing bound, below
// the 1.488 Mpps theoretical line rate of gigabit Ethernet).
const (
	// BitsPerNanosecond is the line rate: 1 Gb/s = 1 bit/ns.
	BitsPerNanosecond = 1
	// FrameOverheadBytes is preamble + FCS + inter-frame gap.
	FrameOverheadBytes = 24
	// DescriptorCost is the per-packet hardware processing floor.
	DescriptorCost = 820 * sim.Nanosecond
)

// txDesc is one packet handed to the hardware.
type txDesc struct {
	bus iommu.BusAddr
	len int
}

// NIC is the simulated adapter.
type NIC struct {
	env *sim.Env
	dma *iommu.DMA

	queue []txDesc
	kick  *sim.Event

	// onComplete runs (in scheduler context) after each packet leaves the
	// wire; the netmap driver hooks it to reclaim ring slots.
	onComplete func()

	// Receive side: posted buffers and the driver's completion callback.
	rxBufs []rxBuf
	onRx   func(length int)

	// TxPackets and TxBytes count transmitted traffic.
	TxPackets uint64
	TxBytes   uint64
	// RxPackets, RxBytes, and RxDrops count received traffic.
	RxPackets uint64
	RxBytes   uint64
	RxDrops   uint64
	// Checksum folds every transmitted byte, proving the device really
	// read the packet contents out of the rings via DMA.
	Checksum uint32
	// DMAFaults counts packets dropped because the IOMMU refused access.
	DMAFaults uint64
}

// New creates the adapter.
func New(env *sim.Env) *NIC {
	n := &NIC{env: env, kick: env.NewEvent("nic-kick")}
	env.Spawn("nic-tx", n.txEngine)
	return n
}

// Connect attaches the DMA path (device assignment).
func (n *NIC) Connect(dma *iommu.DMA) { n.dma = dma }

// Reset models a function-level reset during driver VM restart (§8): the
// TX queue is dropped and the device detaches from its DMA domain and
// completion callback until reconnected. Counters survive (they are
// diagnostics, not device state).
func (n *NIC) Reset() {
	n.queue = nil
	n.dma = nil
	n.onComplete = nil
	n.rxBufs = nil
	n.onRx = nil
}

// OnTxComplete registers the driver's completion callback.
func (n *NIC) OnTxComplete(fn func()) { n.onComplete = fn }

// EnqueueTx hands a packet descriptor to the hardware.
func (n *NIC) EnqueueTx(bus iommu.BusAddr, length int) {
	n.queue = append(n.queue, txDesc{bus: bus, len: length})
	n.kick.Trigger()
}

// Pending returns the number of packets queued in hardware.
func (n *NIC) Pending() int { return len(n.queue) }

// --- receive path ---

// rxBuf is one receive buffer the driver posted.
type rxBuf struct {
	bus  iommu.BusAddr
	size int
}

// PostRxBuffer hands the hardware an empty receive buffer.
func (n *NIC) PostRxBuffer(bus iommu.BusAddr, size int) {
	n.rxBufs = append(n.rxBufs, rxBuf{bus: bus, size: size})
}

// OnRxComplete registers the driver's receive callback, invoked with the
// received length after the packet lands in the next posted buffer.
func (n *NIC) OnRxComplete(fn func(length int)) { n.onRx = fn }

// InjectRx models a frame arriving from the wire: after the wire time, the
// NIC DMA-writes it into the oldest posted receive buffer and completes.
// With no buffer posted the frame is dropped (RxDrops), as on hardware.
func (n *NIC) InjectRx(frame []byte) {
	wire := sim.Duration((len(frame)+FrameOverheadBytes)*8) / BitsPerNanosecond * sim.Nanosecond
	pkt := append([]byte(nil), frame...)
	n.env.After(wire, func() {
		if len(n.rxBufs) == 0 || n.dma == nil {
			n.RxDrops++
			return
		}
		buf := n.rxBufs[0]
		n.rxBufs = n.rxBufs[1:]
		m := len(pkt)
		if m > buf.size {
			m = buf.size
		}
		if err := n.dma.Write(buf.bus, pkt[:m]); err != nil {
			n.DMAFaults++
			return
		}
		n.RxPackets++
		n.RxBytes += uint64(m)
		if n.onRx != nil {
			n.onRx(m)
		}
	})
}

// txEngine drains the TX queue: per packet, the larger of the wire time and
// the descriptor-processing floor.
func (n *NIC) txEngine(p *sim.Proc) {
	for {
		if len(n.queue) == 0 {
			n.kick.Reset()
			p.Wait(n.kick)
			continue
		}
		d := n.queue[0]
		n.queue = n.queue[1:]
		buf := make([]byte, d.len)
		if n.dma == nil || n.dma.Read(d.bus, buf) != nil {
			n.DMAFaults++
			continue
		}
		wire := sim.Duration((d.len+FrameOverheadBytes)*8) / BitsPerNanosecond * sim.Nanosecond
		cost := wire
		if DescriptorCost > cost {
			cost = DescriptorCost
		}
		p.Advance(cost)
		n.TxPackets++
		n.TxBytes += uint64(d.len)
		for _, b := range buf {
			n.Checksum = n.Checksum*31 + uint32(b)
		}
		if n.onComplete != nil {
			n.onComplete()
		}
	}
}
