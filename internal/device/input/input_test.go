package input_test

// Tests for the input device + evdev driver pair: event queueing and fan-out,
// the evdev read path (blocking, partial, multi-event, wire format), queue
// overflow accounting, and driver detach on device reset.

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/device/input"
	"paradice/internal/driver/evdev"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

const evPath = "/dev/input/event0"

// evdev's per-reader queue cap (a driver-internal constant; the overflow
// test pins its observable effect).
const evMaxQueued = 256

type evRig struct {
	env *sim.Env
	k   *kernel.Kernel
	dev *input.Device
	drv *evdev.Driver
}

func newEvRig(t testing.TB, irqLatency sim.Duration) *evRig {
	t.Helper()
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	const ram = 8 << 20
	alloc := phys.NewAllocator("ram", 0x1000_0000, ram)
	base, err := alloc.AllocPages(ram / mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	ept := mem.NewEPT()
	for off := uint64(0); off < ram; off += mem.PageSize {
		if err := ept.Map(mem.GuestPhys(off), base+mem.SysPhys(off), mem.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	space := &mem.GuestSpace{Phys: phys, EPT: ept}
	k := kernel.New("testvm", kernel.Linux, env, space, ram)
	dev := input.New(env, "mouse", irqLatency)
	drv := evdev.Attach(k, dev, evPath)
	return &evRig{env: env, k: k, dev: dev, drv: drv}
}

// open runs a task that opens the device and returns the fd (readers only
// queue events that arrive after their open).
func (r *evRig) open(t testing.TB, p *kernel.Process, flags devfile.OpenFlags) int {
	t.Helper()
	fd := -1
	p.SpawnTask("opener", func(tk *kernel.Task) {
		var err error
		fd, err = tk.Open(evPath, flags)
		if err != nil {
			t.Errorf("open: %v", err)
		}
	})
	r.env.Run()
	if fd < 0 {
		t.Fatal("open did not run")
	}
	return fd
}

// A blocking read parks until the device reports, then returns the event in
// wire format with the device's report timestamp.
func TestBlockingReadWakesOnEvent(t *testing.T) {
	const lat = 10 * sim.Microsecond
	r := newEvRig(t, lat)
	p, _ := r.k.NewProcess("reader")
	fd := r.open(t, p, devfile.ORdOnly)

	injectAt := sim.Time(500 * sim.Microsecond)
	r.dev.InjectAt(injectAt, input.EvRel, 0 /* REL_X */, 7)

	var got input.Event
	var wokeAt sim.Time
	p.SpawnTask("reader", func(tk *kernel.Task) {
		dst, _ := p.Alloc(evdev.EventSize)
		n, err := tk.Read(fd, dst, evdev.EventSize)
		if err != nil || n != evdev.EventSize {
			t.Errorf("read: n=%d err=%v", n, err)
			return
		}
		wokeAt = tk.Sim().Now()
		buf := make([]byte, evdev.EventSize)
		if err := p.Mem.Read(dst, buf); err != nil {
			t.Error(err)
			return
		}
		got = evdev.DecodeEvent(buf)
	})
	r.env.Run()
	if got.Type != input.EvRel || got.Code != 0 || got.Value != 7 {
		t.Fatalf("decoded event = %+v", got)
	}
	// The event is stamped when the driver sees it: inject time + interrupt
	// delivery latency. The reader can only have woken after that.
	if got.At != injectAt.Add(lat) {
		t.Fatalf("event stamped %v, want %v", got.At, injectAt.Add(lat))
	}
	if wokeAt < got.At {
		t.Fatalf("reader woke at %v, before the event at %v", wokeAt, got.At)
	}
}

// Queued events drain in arrival order, a short buffer takes only as many
// events as fit, and the remainder survives for the next read.
func TestPartialReadsPreserveOrder(t *testing.T) {
	r := newEvRig(t, 0)
	p, _ := r.k.NewProcess("reader")
	fd := r.open(t, p, devfile.ORdOnly)

	for i := 0; i < 5; i++ {
		r.dev.Inject(input.EvKey, uint16(30+i), 1)
	}
	r.env.Run() // deliver all five

	var codes []uint16
	p.SpawnTask("reader", func(tk *kernel.Task) {
		dst, _ := p.Alloc(5 * evdev.EventSize)
		// First read: room for two events (plus slack that is not a full
		// record, which the driver must ignore).
		n, err := tk.Read(fd, dst, 2*evdev.EventSize+7)
		if err != nil || n != 2*evdev.EventSize {
			t.Errorf("first read: n=%d err=%v", n, err)
			return
		}
		// Second read: room for the remaining three and more.
		n2, err := tk.Read(fd, dst+mem.GuestVirt(n), 5*evdev.EventSize)
		if err != nil || n2 != 3*evdev.EventSize {
			t.Errorf("second read: n=%d err=%v", n2, err)
			return
		}
		buf := make([]byte, n+n2)
		if err := p.Mem.Read(dst, buf); err != nil {
			t.Error(err)
			return
		}
		for off := 0; off < len(buf); off += evdev.EventSize {
			codes = append(codes, evdev.DecodeEvent(buf[off:]).Code)
		}
	})
	r.env.Run()
	want := []uint16{30, 31, 32, 33, 34}
	if len(codes) != len(want) {
		t.Fatalf("codes = %v", codes)
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
}

// A buffer smaller than one event record is EINVAL; an empty queue with
// O_NONBLOCK is EAGAIN.
func TestShortBufferAndNonblock(t *testing.T) {
	r := newEvRig(t, 0)
	p, _ := r.k.NewProcess("reader")
	fd := r.open(t, p, devfile.ORdOnly|devfile.ONonblock)

	p.SpawnTask("empty", func(tk *kernel.Task) {
		dst, _ := p.Alloc(evdev.EventSize)
		if _, err := tk.Read(fd, dst, evdev.EventSize); !kernel.IsErrno(err, kernel.EAGAIN) {
			t.Errorf("nonblocking read on empty queue: %v, want EAGAIN", err)
		}
	})
	r.env.Run()

	r.dev.Inject(input.EvKey, 30, 1)
	r.env.Run()
	p.SpawnTask("short", func(tk *kernel.Task) {
		dst, _ := p.Alloc(evdev.EventSize)
		if _, err := tk.Read(fd, dst, evdev.EventSize-1); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("short-buffer read: %v, want EINVAL", err)
		}
		// The undersized read consumed nothing: a proper read still sees it.
		n, err := tk.Read(fd, dst, evdev.EventSize)
		if err != nil || n != evdev.EventSize {
			t.Errorf("follow-up read: n=%d err=%v", n, err)
		}
	})
	r.env.Run()
}

// A reader that stops draining loses exactly the events past the queue cap —
// counted in Dropped — and the queued ones all arrive.
func TestQueueOverflowDropsAndCounts(t *testing.T) {
	r := newEvRig(t, 0)
	p, _ := r.k.NewProcess("reader")
	fd := r.open(t, p, devfile.ORdOnly|devfile.ONonblock)

	const injected = evMaxQueued + 50
	for i := 0; i < injected; i++ {
		r.dev.Inject(input.EvRel, 1 /* REL_Y */, int32(i))
	}
	r.env.Run()
	if r.drv.Dropped != injected-evMaxQueued {
		t.Fatalf("Dropped = %d, want %d", r.drv.Dropped, injected-evMaxQueued)
	}

	drained := 0
	var first, last input.Event
	p.SpawnTask("drain", func(tk *kernel.Task) {
		const batch = 32
		dst, _ := p.Alloc(batch * evdev.EventSize)
		buf := make([]byte, batch*evdev.EventSize)
		for {
			n, err := tk.Read(fd, dst, batch*evdev.EventSize)
			if kernel.IsErrno(err, kernel.EAGAIN) {
				return
			}
			if err != nil {
				t.Errorf("drain read: %v", err)
				return
			}
			if err := p.Mem.Read(dst, buf[:n]); err != nil {
				t.Error(err)
				return
			}
			for off := 0; off < n; off += evdev.EventSize {
				ev := evdev.DecodeEvent(buf[off:])
				if drained == 0 {
					first = ev
				}
				last = ev
				drained++
			}
		}
	})
	r.env.Run()
	if drained != evMaxQueued {
		t.Fatalf("drained %d events, want %d", drained, evMaxQueued)
	}
	// Overflow drops the NEWEST events: the queue keeps 0..cap-1.
	if first.Value != 0 || last.Value != evMaxQueued-1 {
		t.Fatalf("kept values %d..%d, want 0..%d", first.Value, last.Value, evMaxQueued-1)
	}
}

// Every reader gets its own copy of each event; closing detaches a reader's
// queue.
func TestFanOutToMultipleReaders(t *testing.T) {
	r := newEvRig(t, 0)
	p, _ := r.k.NewProcess("app")
	fd1 := r.open(t, p, devfile.ORdOnly|devfile.ONonblock)
	fd2 := r.open(t, p, devfile.ORdOnly|devfile.ONonblock)

	r.dev.Inject(input.EvKey, 57, 1)
	r.env.Run()

	readOne := func(tk *kernel.Task, fd int) (input.Event, bool) {
		dst, _ := p.Alloc(evdev.EventSize)
		n, err := tk.Read(fd, dst, evdev.EventSize)
		if err != nil || n != evdev.EventSize {
			return input.Event{}, false
		}
		buf := make([]byte, evdev.EventSize)
		_ = p.Mem.Read(dst, buf)
		return evdev.DecodeEvent(buf), true
	}
	p.SpawnTask("readers", func(tk *kernel.Task) {
		e1, ok1 := readOne(tk, fd1)
		e2, ok2 := readOne(tk, fd2)
		if !ok1 || !ok2 || e1.Code != 57 || e2.Code != 57 {
			t.Errorf("fan-out: %+v/%v %+v/%v", e1, ok1, e2, ok2)
		}
		if err := tk.Close(fd2); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()

	// After fd2 closed, only fd1 queues the next event.
	r.dev.Inject(input.EvKey, 58, 1)
	r.env.Run()
	p.SpawnTask("after-close", func(tk *kernel.Task) {
		if e, ok := readOne(tk, fd1); !ok || e.Code != 58 {
			t.Errorf("fd1 after close: %+v/%v", e, ok)
		}
	})
	r.env.Run()
	if r.drv.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", r.drv.Dropped)
	}
}

// Reset detaches the device from the driver (driver VM restart, §8): events
// injected while detached are lost on the floor — not queued, not counted as
// driver-level drops.
func TestResetDetachesDriver(t *testing.T) {
	r := newEvRig(t, 0)
	p, _ := r.k.NewProcess("reader")
	fd := r.open(t, p, devfile.ORdOnly|devfile.ONonblock)

	r.dev.Reset()
	r.dev.Inject(input.EvKey, 30, 1)
	r.env.Run()

	p.SpawnTask("reader", func(tk *kernel.Task) {
		dst, _ := p.Alloc(evdev.EventSize)
		if _, err := tk.Read(fd, dst, evdev.EventSize); !kernel.IsErrno(err, kernel.EAGAIN) {
			t.Errorf("read after reset: %v, want EAGAIN (event lost)", err)
		}
	})
	r.env.Run()
	if r.drv.Dropped != 0 {
		t.Fatalf("Dropped = %d; detached-device events are lost, not dropped", r.drv.Dropped)
	}
}
