// Package input simulates USB HID input devices — the Dell mouse and
// keyboard of the paper's Table 1. The device reports events to the driver
// with the platform's interrupt delivery latency; the evdev driver fans
// them out to readers.
package input

import (
	"paradice/internal/sim"
)

// Event is one input event in the evdev wire format's fields.
type Event struct {
	Type  uint16 // 1 = key, 2 = relative motion
	Code  uint16
	Value int32
	// At is the simulated time the event was reported to the driver.
	At sim.Time
}

// Event types.
const (
	EvKey = 1
	EvRel = 2
)

// Device is a mouse or keyboard.
type Device struct {
	env  *sim.Env
	name string
	// report delivers an event to the driver (set by the driver at attach).
	report func(Event)
	// irqLatency is charged between the hardware event and the driver
	// seeing it: ~0 natively, the hypervisor routing cost in a VM.
	irqLatency sim.Duration
}

// New creates an input device.
func New(env *sim.Env, name string, irqLatency sim.Duration) *Device {
	return &Device{env: env, name: name, irqLatency: irqLatency}
}

// OnReport registers the driver's event entry point.
func (d *Device) OnReport(fn func(Event)) { d.report = fn }

// Reset detaches the device from its driver (driver VM restart, §8);
// events emitted before a new driver attaches are lost, as on hardware.
func (d *Device) Reset() { d.report = nil }

// Inject emits an event at the current time; the driver receives it after
// the interrupt delivery latency.
func (d *Device) Inject(typ, code uint16, value int32) {
	d.env.After(d.irqLatency, func() {
		if d.report != nil {
			d.report(Event{Type: typ, Code: code, Value: value, At: d.env.Now()})
		}
	})
}

// InjectAt schedules an event for an absolute simulated time.
func (d *Device) InjectAt(at sim.Time, typ, code uint16, value int32) {
	d.env.At(at, func() {
		d.env.After(d.irqLatency, func() {
			if d.report != nil {
				d.report(Event{Type: typ, Code: code, Value: value, At: d.env.Now()})
			}
		})
	})
}
