// Package audio simulates an HD Audio controller codec — the Intel Panther
// Point of the paper's Table 1. It consumes PCM samples from a DMA ring at
// exactly the configured sample rate, so playback of a fixed-length file
// takes the same wall-clock time in every configuration (§6.1.6).
package audio

import (
	"paradice/internal/iommu"
	"paradice/internal/sim"
)

// Device is the codec.
type Device struct {
	env *sim.Env
	dma *iommu.DMA

	rate     int // frames per second
	frameSz  int // bytes per frame (channels * sample size)
	running  bool
	ring     []iommu.BusAddr // page-chunk scatter list of the DMA buffer
	ringSize int
	rd       int // codec read offset into the ring
	level    int // bytes buffered

	// onDrain notifies the driver that ring space freed up.
	onDrain func()

	// FramesPlayed counts consumed PCM frames; Checksum folds sample bytes.
	FramesPlayed uint64
	Checksum     uint32
	// Underruns counts periods where the ring ran dry.
	Underruns uint64
}

// New creates the codec with CD-quality defaults.
func New(env *sim.Env) *Device {
	return &Device{env: env, rate: 48000, frameSz: 4}
}

// Connect attaches the DMA path.
func (d *Device) Connect(dma *iommu.DMA) { d.dma = dma }

// Reset stops playback and detaches the device (driver VM restart, §8).
func (d *Device) Reset() {
	d.running = false
	d.level = 0
	d.dma = nil
	d.onDrain = nil
}

// OnDrain registers the driver's space-available callback.
func (d *Device) OnDrain(fn func()) { d.onDrain = fn }

// Configure sets the stream parameters and the DMA ring.
func (d *Device) Configure(rate, frameSz int, ring []iommu.BusAddr, ringSize int) {
	d.rate, d.frameSz = rate, frameSz
	d.ring, d.ringSize = ring, ringSize
	d.rd, d.level = 0, 0
}

// Rate returns the configured sample rate.
func (d *Device) Rate() int { return d.rate }

// FrameBytes returns bytes per PCM frame.
func (d *Device) FrameBytes() int { return d.frameSz }

// BufferLevel returns the bytes currently queued.
func (d *Device) BufferLevel() int { return d.level }

// RingSize returns the DMA ring capacity in bytes.
func (d *Device) RingSize() int { return d.ringSize }

// Feed tells the codec n more bytes are available in the ring.
func (d *Device) Feed(n int) {
	d.level += n
	if !d.running {
		d.running = true
		d.env.After(d.periodDuration(), d.tick)
	}
}

// periodBytes is the codec's service granularity: 1/100 s of audio.
func (d *Device) periodBytes() int { return d.rate * d.frameSz / 100 }

func (d *Device) periodDuration() sim.Duration { return 10 * sim.Millisecond }

// tick consumes one period of samples from the ring in real time.
func (d *Device) tick() {
	if !d.running {
		return
	}
	n := d.periodBytes()
	if d.level < n {
		if d.level == 0 {
			d.running = false
			d.Underruns++
			return
		}
		n = d.level
	}
	d.consume(n)
	d.level -= n
	d.FramesPlayed += uint64(n / d.frameSz)
	if d.onDrain != nil {
		d.onDrain()
	}
	d.env.After(d.periodDuration(), d.tick)
}

// consume DMA-reads n bytes from the ring at the codec's read offset.
func (d *Device) consume(n int) {
	for n > 0 && d.dma != nil {
		page := d.rd / 4096
		off := d.rd % 4096
		chunk := 4096 - off
		if chunk > n {
			chunk = n
		}
		buf := make([]byte, chunk)
		if err := d.dma.Read(d.ring[page]+iommu.BusAddr(off), buf); err == nil {
			for _, b := range buf {
				d.Checksum = d.Checksum*31 + uint32(b)
			}
		}
		d.rd = (d.rd + chunk) % d.ringSize
		n -= chunk
	}
}
