package audio

import (
	"testing"

	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

func newRig(t testing.TB) (*Device, *sim.Env, *mem.PhysMem, []iommu.BusAddr, mem.SysPhys) {
	t.Helper()
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	ram := phys.NewAllocator("ram", 0x1000_0000, 16*mem.PageSize)
	base, err := ram.AllocPages(4)
	if err != nil {
		t.Fatal(err)
	}
	dom := iommu.NewDomain("hda")
	if err := dom.MapRange(0x20000, base, 4, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	d := New(env)
	d.Connect(&iommu.DMA{Dom: dom, Phys: phys})
	ring := make([]iommu.BusAddr, 4)
	for i := range ring {
		ring[i] = iommu.BusAddr(0x20000 + i*mem.PageSize)
	}
	d.Configure(48000, 4, ring, 4*mem.PageSize)
	return d, env, phys, ring, base
}

func TestPlaybackPacedAtSampleRate(t *testing.T) {
	d, env, _, _, _ := newRig(t)
	// Feed half a second of audio.
	bytes := 48000 * 4 / 2
	fed := 0
	for fed < bytes {
		chunk := d.RingSize() - d.BufferLevel()
		if chunk > bytes-fed {
			chunk = bytes - fed
		}
		if chunk > 0 {
			d.Feed(chunk)
			fed += chunk
		}
		env.RunUntil(env.Now().Add(10 * sim.Millisecond))
	}
	env.Run()
	if d.FramesPlayed != 24000 {
		t.Fatalf("frames played = %d, want 24000", d.FramesPlayed)
	}
	// Playback of 0.5s takes ~0.5s (period granularity slack).
	if env.Now() < sim.Time(490*sim.Millisecond) || env.Now() > sim.Time(560*sim.Millisecond) {
		t.Fatalf("0.5s of audio played in %v", env.Now())
	}
}

func TestChecksumProvesDMARead(t *testing.T) {
	d, env, phys, _, base := newRig(t)
	samples := make([]byte, d.RingSize())
	for i := range samples {
		samples[i] = byte(i * 3)
	}
	if err := phys.Write(base, samples); err != nil {
		t.Fatal(err)
	}
	d.Feed(len(samples))
	env.Run()
	if d.Checksum == 0 {
		t.Fatal("codec consumed no real bytes")
	}
	want := uint32(0)
	for _, b := range samples {
		want = want*31 + uint32(b)
	}
	if d.Checksum != want {
		t.Fatalf("checksum %#x, want %#x", d.Checksum, want)
	}
}

func TestUnderrunStopsEngine(t *testing.T) {
	d, env, _, _, _ := newRig(t)
	d.Feed(d.periodBytes()) // exactly one period
	env.Run()
	if d.Underruns != 1 {
		t.Fatalf("underruns = %d, want 1", d.Underruns)
	}
	// Feeding again restarts playback.
	d.Feed(d.periodBytes())
	env.Run()
	if d.FramesPlayed != uint64(2*d.periodBytes()/4) {
		t.Fatalf("frames played = %d", d.FramesPlayed)
	}
}

func TestOnDrainFires(t *testing.T) {
	d, env, _, _, _ := newRig(t)
	drains := 0
	d.OnDrain(func() { drains++ })
	d.Feed(3 * d.periodBytes())
	env.Run()
	if drains != 3 {
		t.Fatalf("drain callbacks = %d, want 3", drains)
	}
}

func TestReconfigure(t *testing.T) {
	d, _, _, ring, _ := newRig(t)
	d.Configure(44100, 2, ring, 4*mem.PageSize)
	if d.Rate() != 44100 || d.FrameBytes() != 2 {
		t.Fatalf("rate=%d fsz=%d", d.Rate(), d.FrameBytes())
	}
	if d.BufferLevel() != 0 {
		t.Fatal("reconfigure did not reset the level")
	}
}
