// Package gpu simulates a Radeon-Evergreen-class discrete GPU — the
// HD 6450 of the paper's testbed. It models the pieces Paradice interacts
// with: a VRAM aperture exposed as a BAR, a command processor executing
// command streams with a cycle-cost model, fence interrupts, an
// interrupt-reason buffer in system memory (the §5.3 problem child), DMA
// through the IOMMU, and the memory-controller bound registers that device
// data isolation uses to partition VRAM between guest VMs.
package gpu

import (
	"encoding/binary"
	"fmt"
	"math"

	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Command opcodes, as encoded in command-stream words by userspace
// libraries and parsed by the DRM driver and the command processor.
const (
	OpNop     = 0
	OpDraw    = 1 // args: dstAddr, texAddr, workCycles, outBytes
	OpCompute = 2 // args: aAddr, bAddr, cAddr, order
	OpCopy    = 3 // args: srcAddr, dstAddr, byteLen
)

// Interrupt reason codes written to the interrupt-reason buffer.
const (
	IRQFence = 1
	IRQVSync = 2
)

// NsPerCycle converts the abstract GPU work cycles of a draw command to
// simulated time.
const NsPerCycle = sim.Nanosecond

// NsPerMulAdd is the compute cost of one fused multiply-add, calibrated so
// an order-500 matrix multiplication takes ~10 s, matching Figure 6's
// single-VM time on the HD 6450 through Gallium Compute.
const NsPerMulAdd = 80 * sim.Nanosecond

// EngineCmd is one command as enqueued by the driver, already translated
// from buffer-object handles to VRAM addresses.
type EngineCmd struct {
	op       uint32
	args     [4]uint64
	fenceSeq uint32 // fence to signal after this command (0 = none)
}

// GPU is the simulated device.
type GPU struct {
	env  *sim.Env
	phys *mem.PhysMem

	// VRAM aperture.
	vramBase mem.SysPhys
	vramSize uint64

	// Memory-controller accessible-VRAM bounds (the Evergreen FB_LOCATION
	// registers §4.2 leans on). Offsets into VRAM.
	mcLow, mcHigh uint64

	// DMA path to system memory (nil until the device is assigned).
	dma *iommu.DMA

	// IRQ delivery into the owning VM (set at assignment).
	raiseIRQ func()

	// Interrupt-reason ring in system memory; 0 disables it (the device
	// data isolation configuration interprets every interrupt as a fence).
	irqReasonBus iommu.BusAddr

	queue    []EngineCmd
	kick     *sim.Event
	fenceSeq uint32 // last completed fence (readable register)
	broken   bool   // wedged by a bad control-register write

	// Faults counts engine memory-access violations (MC bounds, IOMMU).
	Faults int
	// Executed counts completed commands.
	Executed int
}

// WriteControlReg models the attack surface §8 describes: "a malicious
// guest VM can break the device by corrupting the device driver and writing
// unexpected values into the device registers". Any unrecognized value
// wedges the command processor: queued and future commands stop executing
// and fences stop signaling, until Reset.
func (g *GPU) WriteControlReg(val uint64) {
	if val != 0 {
		g.broken = true
	}
}

// Broken reports whether the command processor is wedged.
func (g *GPU) Broken() bool { return g.broken }

// Reset models a device function-level reset, performed when the driver VM
// is restarted (§8): the command queue is dropped, the fence counter and
// memory-controller window return to power-on state, and the device runs
// again. VRAM contents survive, as on real hardware.
func (g *GPU) Reset() {
	g.broken = false
	g.queue = nil
	g.fenceSeq = 0
	g.mcLow, g.mcHigh = 0, g.vramSize
	g.irqReasonBus = 0
	g.dma = nil
	g.raiseIRQ = nil
}

// New creates a GPU with vramSize bytes of device memory backed at a fresh
// physical range.
func New(env *sim.Env, phys *mem.PhysMem, vramBase mem.SysPhys, vramSize uint64) *GPU {
	g := &GPU{
		env:      env,
		phys:     phys,
		vramBase: vramBase,
		vramSize: vramSize,
		mcHigh:   vramSize,
		kick:     env.NewEvent("gpu-kick"),
	}
	phys.AddRange("gpu-vram", vramBase, vramSize)
	env.Spawn("gpu-engine", g.engine)
	return g
}

// VRAMBase returns the system-physical base of the VRAM aperture (its BAR).
func (g *GPU) VRAMBase() mem.SysPhys { return g.vramBase }

// VRAMSize returns the device memory size in bytes.
func (g *GPU) VRAMSize() uint64 { return g.vramSize }

// Connect attaches the device to its IOMMU domain and interrupt line, as
// part of device assignment.
func (g *GPU) Connect(dma *iommu.DMA, raiseIRQ func()) {
	g.dma = dma
	g.raiseIRQ = raiseIRQ
}

// EnsureVRAM backs [off, off+size) of VRAM with frames (device memory is
// allocated lazily, like real VRAM pages touched for the first time).
func (g *GPU) EnsureVRAM(off, size uint64) error {
	if off+size > g.vramSize || off+size < off {
		return fmt.Errorf("gpu: VRAM range [%#x,+%#x) outside %#x", off, size, g.vramSize)
	}
	for p := mem.PageBase(off); p < off+size; p += mem.PageSize {
		g.phys.Populate(g.vramBase + mem.SysPhys(p))
	}
	return nil
}

// --- registers ---

// FenceSeq reads the completed-fence register.
func (g *GPU) FenceSeq() uint32 { return g.fenceSeq }

// SetMCBounds programs the memory-controller accessible-VRAM window
// [lo, hi). This is the register pair the hypervisor takes control of for
// device data isolation (§4.2); the DRM driver reaches it through a gate.
func (g *GPU) SetMCBounds(lo, hi uint64) {
	g.mcLow, g.mcHigh = lo, hi
}

// MCBounds returns the current accessible-VRAM window.
func (g *GPU) MCBounds() (lo, hi uint64) { return g.mcLow, g.mcHigh }

// SetIRQReasonBuffer points the device's interrupt-reason ring at a system
// memory page (bus address), or disables it with 0.
func (g *GPU) SetIRQReasonBuffer(bus iommu.BusAddr) { g.irqReasonBus = bus }

// --- command submission ---

// Submit enqueues translated commands followed by a fence, returning the
// fence sequence number.
func (g *GPU) Submit(cmds []EngineCmd, fence uint32) {
	for i := range cmds {
		if i == len(cmds)-1 {
			cmds[i].fenceSeq = fence
		}
		g.queue = append(g.queue, cmds[i])
	}
	if len(cmds) == 0 {
		g.queue = append(g.queue, EngineCmd{op: OpNop, fenceSeq: fence})
	}
	g.kick.Trigger()
}

// Cmd builds an engine command (used by the driver after BO translation).
func Cmd(op uint32, args ...uint64) EngineCmd {
	c := EngineCmd{op: op}
	copy(c.args[:], args)
	return c
}

// engine is the command processor: strictly in-order execution, one command
// at a time — which is what shares GPU time between guest VMs and produces
// the linear scaling of Figure 6.
func (g *GPU) engine(p *sim.Proc) {
	for {
		if len(g.queue) == 0 || g.broken {
			g.kick.Reset()
			p.Wait(g.kick)
			continue
		}
		cmd := g.queue[0]
		g.queue = g.queue[1:]
		tr := trace.Get(g.env)
		start := tr.Now()
		g.exec(p, cmd)
		if tr != nil {
			// Device compute/copy time is not attributable to one forwarded
			// request — commands execute asynchronously after the submitting
			// ioctl returned — so engine spans carry rid 0.
			tr.Span(0, "device", trace.LayerDevice, cmdName(cmd.op), start, tr.Now())
			tr.Add("device.gpu.cmds", 1)
		}
		g.Executed++
		if cmd.fenceSeq != 0 {
			g.fenceSeq = cmd.fenceSeq
			g.signalIRQ(IRQFence)
		}
	}
}

// signalIRQ posts the interrupt reason (when the reason buffer is enabled)
// and raises the device interrupt.
func (g *GPU) signalIRQ(reason uint32) {
	if g.irqReasonBus != 0 && g.dma != nil {
		if err := g.dma.WriteU32(g.irqReasonBus, reason); err != nil {
			g.Faults++
		}
	}
	if g.raiseIRQ != nil {
		g.raiseIRQ()
	}
}

// vram checks an engine access against the MC bounds and returns the
// physical address. Accesses outside the window do not succeed (§4.2).
func (g *GPU) vram(off, size uint64) (mem.SysPhys, error) {
	if off < g.mcLow || off+size > g.mcHigh || off+size < off {
		g.Faults++
		return 0, fmt.Errorf("gpu: VRAM access [%#x,+%#x) outside MC window [%#x,%#x)",
			off, size, g.mcLow, g.mcHigh)
	}
	return g.vramBase + mem.SysPhys(off), nil
}

func cmdName(op uint32) string {
	switch op {
	case OpDraw:
		return "gpu-draw"
	case OpCompute:
		return "gpu-compute"
	case OpCopy:
		return "gpu-copy"
	}
	return "gpu-nop"
}

func (g *GPU) exec(p *sim.Proc, c EngineCmd) {
	switch c.op {
	case OpNop:
	case OpDraw:
		g.execDraw(p, c)
	case OpCompute:
		g.execCompute(p, c)
	case OpCopy:
		g.execCopy(p, c)
	default:
		g.Faults++
	}
}

// execDraw renders: it reads the texture (verifying access), burns the
// command's work cycles, and stamps the render target.
func (g *GPU) execDraw(p *sim.Proc, c EngineCmd) {
	dst, tex, cycles := c.args[0], c.args[1], c.args[2]
	if tex != math.MaxUint64 {
		pa, err := g.vram(tex, 64)
		if err != nil {
			return
		}
		var probe [64]byte
		if g.phys.Read(pa, probe[:]) != nil {
			g.Faults++
			return
		}
	}
	pa, err := g.vram(dst, 64)
	if err != nil {
		return
	}
	p.Advance(sim.Duration(cycles) * NsPerCycle)
	var stamp [64]byte
	binary.LittleEndian.PutUint32(stamp[:], uint32(g.Executed+1))
	binary.LittleEndian.PutUint32(stamp[4:], uint32(cycles))
	if g.phys.Write(pa, stamp[:]) != nil {
		g.Faults++
	}
}

// execCompute multiplies two square float32 matrices held in VRAM — the
// real product, so a guest's OpenCL result can be verified end to end.
func (g *GPU) execCompute(p *sim.Proc, c EngineCmd) {
	aOff, bOff, cOff, n := c.args[0], c.args[1], c.args[2], c.args[3]
	bytes := n * n * 4
	aPA, err := g.vram(aOff, bytes)
	if err != nil {
		return
	}
	bPA, err := g.vram(bOff, bytes)
	if err != nil {
		return
	}
	cPA, err := g.vram(cOff, bytes)
	if err != nil {
		return
	}
	a := make([]byte, bytes)
	b := make([]byte, bytes)
	if g.phys.Read(aPA, a) != nil || g.phys.Read(bPA, b) != nil {
		g.Faults++
		return
	}
	af := toF32(a)
	bf := toF32(b)
	cf := make([]float32, n*n)
	for i := uint64(0); i < n; i++ {
		for k := uint64(0); k < n; k++ {
			aik := af[i*n+k]
			row := bf[k*n : k*n+n]
			out := cf[i*n : i*n+n]
			for j := range out {
				out[j] += aik * row[j]
			}
		}
	}
	p.Advance(sim.Duration(n*n*n) * NsPerMulAdd)
	if g.phys.Write(cPA, fromF32(cf)) != nil {
		g.Faults++
	}
}

// execCopy is the DMA engine: VRAM-to-VRAM or VRAM/system transfers. Source
// and destination above 1<<63 are bus (system) addresses via the IOMMU.
func (g *GPU) execCopy(p *sim.Proc, c EngineCmd) {
	src, dst, n := c.args[0], c.args[1], c.args[2]
	buf := make([]byte, n)
	if err := g.read(src, buf); err != nil {
		return
	}
	p.Advance(sim.Duration(n) * sim.Nanosecond / 8) // ~8 GB/s blit engine
	if err := g.write(dst, buf); err != nil {
		return
	}
}

// BusFlag marks a copy address as a system-memory bus address rather than a
// VRAM offset.
const BusFlag = uint64(1) << 63

func (g *GPU) read(addr uint64, buf []byte) error {
	if addr&BusFlag != 0 {
		if g.dma == nil {
			g.Faults++
			return fmt.Errorf("gpu: no DMA path")
		}
		if err := g.dma.Read(iommu.BusAddr(addr&^BusFlag), buf); err != nil {
			g.Faults++
			return err
		}
		return nil
	}
	pa, err := g.vram(addr, uint64(len(buf)))
	if err != nil {
		return err
	}
	if err := g.phys.Read(pa, buf); err != nil {
		g.Faults++
		return err
	}
	return nil
}

func (g *GPU) write(addr uint64, buf []byte) error {
	if addr&BusFlag != 0 {
		if g.dma == nil {
			g.Faults++
			return fmt.Errorf("gpu: no DMA path")
		}
		if err := g.dma.Write(iommu.BusAddr(addr&^BusFlag), buf); err != nil {
			g.Faults++
			return err
		}
		return nil
	}
	pa, err := g.vram(addr, uint64(len(buf)))
	if err != nil {
		return err
	}
	if err := g.phys.Write(pa, buf); err != nil {
		g.Faults++
		return err
	}
	return nil
}

func toF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func fromF32(f []float32) []byte {
	out := make([]byte, len(f)*4)
	for i, v := range f {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}
