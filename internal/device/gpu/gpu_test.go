package gpu

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

func newGPU(t testing.TB) (*GPU, *sim.Env, *mem.PhysMem) {
	t.Helper()
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	g := New(env, phys, 0x8_0000_0000, 64<<20)
	return g, env, phys
}

func putF32(phys *mem.PhysMem, base mem.SysPhys, data []float32) error {
	buf := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return phys.Write(base, buf)
}

func getF32(phys *mem.PhysMem, base mem.SysPhys, n int) ([]float32, error) {
	buf := make([]byte, n*4)
	if err := phys.Read(base, buf); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}

func TestComputeMatmulCorrect(t *testing.T) {
	g, env, phys := newGPU(t)
	const n = 8
	if err := g.EnsureVRAM(0, 3*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%7) * 0.5
		b[i] = float32(i%5) * 0.25
	}
	if err := putF32(phys, g.VRAMBase(), a); err != nil {
		t.Fatal(err)
	}
	if err := putF32(phys, g.VRAMBase()+mem.PageSize, b); err != nil {
		t.Fatal(err)
	}
	g.Submit([]EngineCmd{Cmd(OpCompute, 0, mem.PageSize, 2*mem.PageSize, n)}, 1)
	env.Run()
	if g.FenceSeq() != 1 {
		t.Fatalf("fence = %d", g.FenceSeq())
	}
	got, err := getF32(phys, g.VRAMBase()+2*mem.PageSize, n*n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float32
			for k := 0; k < n; k++ {
				want += a[i*n+k] * b[k*n+j]
			}
			if d := want - got[i*n+j]; d > 1e-4 || d < -1e-4 {
				t.Fatalf("C[%d,%d] = %f, want %f", i, j, got[i*n+j], want)
			}
		}
	}
}

func TestComputeTimeModel(t *testing.T) {
	g, env, _ := newGPU(t)
	const n = 16
	if err := g.EnsureVRAM(0, 3*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	g.Submit([]EngineCmd{Cmd(OpCompute, 0, mem.PageSize, 2*mem.PageSize, n)}, 1)
	env.Run()
	want := sim.Duration(n*n*n) * NsPerMulAdd
	if got := env.Now().Sub(0); got < want {
		t.Fatalf("compute finished at %v, want >= %v", got, want)
	}
}

func TestDrawStampsTarget(t *testing.T) {
	g, env, phys := newGPU(t)
	if err := g.EnsureVRAM(0, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	start := env.Now()
	g.Submit([]EngineCmd{Cmd(OpDraw, mem.PageSize, ^uint64(0), 5_000_000)}, 1)
	env.Run()
	if e := env.Now().Sub(start); e < 5*sim.Millisecond {
		t.Fatalf("draw of 5M cycles took %v, want >= 5ms", e)
	}
	var b [4]byte
	if err := phys.Read(g.VRAMBase()+mem.PageSize, b[:]); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(b[:]) == 0 {
		t.Fatal("render target not stamped")
	}
}

func TestMCBoundsBlockEngine(t *testing.T) {
	g, env, _ := newGPU(t)
	if err := g.EnsureVRAM(0, 8*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	// Restrict the window to the first 4 pages, then draw into page 6.
	g.SetMCBounds(0, 4*mem.PageSize)
	g.Submit([]EngineCmd{Cmd(OpDraw, 6*mem.PageSize, ^uint64(0), 1000)}, 1)
	env.Run()
	if g.Faults != 1 {
		t.Fatalf("faults = %d, want 1", g.Faults)
	}
	// The fence still signals (command retired), matching real hardware's
	// fault-and-continue behavior.
	if g.FenceSeq() != 1 {
		t.Fatalf("fence = %d after faulted draw", g.FenceSeq())
	}
}

func TestCopyBetweenVRAMRegions(t *testing.T) {
	g, env, phys := newGPU(t)
	if err := g.EnsureVRAM(0, 4*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := phys.Write(g.VRAMBase(), []byte("blit me")); err != nil {
		t.Fatal(err)
	}
	g.Submit([]EngineCmd{Cmd(OpCopy, 0, 2*mem.PageSize, 7)}, 1)
	env.Run()
	got := make([]byte, 7)
	if err := phys.Read(g.VRAMBase()+2*mem.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "blit me" {
		t.Fatalf("copy result %q", got)
	}
}

func TestCopyToSystemMemoryViaIOMMU(t *testing.T) {
	g, env, phys := newGPU(t)
	ram := phys.NewAllocator("ram", 0x1000_0000, 16*mem.PageSize)
	sys, _ := ram.AllocPage()
	dom := iommu.NewDomain("gpu")
	if err := dom.MapRange(0x5000, sys, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	g.Connect(&iommu.DMA{Dom: dom, Phys: phys}, nil)
	if err := g.EnsureVRAM(0, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := phys.Write(g.VRAMBase(), []byte("dma out")); err != nil {
		t.Fatal(err)
	}
	g.Submit([]EngineCmd{Cmd(OpCopy, 0, BusFlag|0x5000, 7)}, 1)
	env.Run()
	got := make([]byte, 7)
	if err := phys.Read(sys, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "dma out" {
		t.Fatalf("system copy result %q", got)
	}
	// Outside the IOMMU mapping: fault, no transfer.
	faults := g.Faults
	g.Submit([]EngineCmd{Cmd(OpCopy, 0, BusFlag|0x9000, 7)}, 2)
	env.Run()
	if g.Faults != faults+1 {
		t.Fatalf("unmapped DMA copy did not fault (faults=%d)", g.Faults)
	}
}

func TestFenceInterruptAndReasonBuffer(t *testing.T) {
	g, env, phys := newGPU(t)
	ram := phys.NewAllocator("ram", 0x1000_0000, 16*mem.PageSize)
	reason, _ := ram.AllocPage()
	dom := iommu.NewDomain("gpu")
	if err := dom.MapRange(0x7000, reason, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	irqs := 0
	g.Connect(&iommu.DMA{Dom: dom, Phys: phys}, func() { irqs++ })
	g.SetIRQReasonBuffer(0x7000)
	if err := g.EnsureVRAM(0, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	g.Submit(nil, 5) // empty submission still fences
	env.Run()
	if irqs != 1 {
		t.Fatalf("irqs = %d, want 1", irqs)
	}
	var b [4]byte
	if err := phys.Read(reason, b[:]); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(b[:]) != IRQFence {
		t.Fatalf("reason = %d, want fence", binary.LittleEndian.Uint32(b[:]))
	}
	if g.FenceSeq() != 5 {
		t.Fatalf("fence register = %d", g.FenceSeq())
	}
}

func TestEnsureVRAMBounds(t *testing.T) {
	g, _, _ := newGPU(t)
	if err := g.EnsureVRAM(g.VRAMSize()-mem.PageSize, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := g.EnsureVRAM(g.VRAMSize(), mem.PageSize); err == nil {
		t.Fatal("EnsureVRAM past the aperture succeeded")
	}
	if err := g.EnsureVRAM(^uint64(0)-100, 200); err == nil {
		t.Fatal("overflowing EnsureVRAM succeeded")
	}
}

func TestCommandsExecuteInOrder(t *testing.T) {
	g, env, phys := newGPU(t)
	if err := g.EnsureVRAM(0, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	// Copy A->B then B->C: order matters.
	if err := phys.Write(g.VRAMBase(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	g.Submit([]EngineCmd{
		Cmd(OpCopy, 0, 64, 1),
		Cmd(OpCopy, 64, 128, 1),
	}, 1)
	env.Run()
	var b [1]byte
	if err := phys.Read(g.VRAMBase()+128, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 'x' {
		t.Fatalf("chained copies out of order: %q", b[:])
	}
	if g.Executed != 2 {
		t.Fatalf("executed = %d", g.Executed)
	}
}

// Property: matmul against identity returns the original matrix.
func TestPropertyMatmulIdentity(t *testing.T) {
	f := func(raw []byte) bool {
		const n = 4
		g, env, phys := newGPU(t)
		if err := g.EnsureVRAM(0, 3*mem.PageSize); err != nil {
			return false
		}
		a := make([]float32, n*n)
		for i := range a {
			v := float32(1)
			if i < len(raw) {
				v = float32(raw[i]) / 16
			}
			a[i] = v
		}
		id := make([]float32, n*n)
		for i := 0; i < n; i++ {
			id[i*n+i] = 1
		}
		if putF32(phys, g.VRAMBase(), a) != nil || putF32(phys, g.VRAMBase()+mem.PageSize, id) != nil {
			return false
		}
		g.Submit([]EngineCmd{Cmd(OpCompute, 0, mem.PageSize, 2*mem.PageSize, n)}, 1)
		env.Run()
		got, err := getF32(phys, g.VRAMBase()+2*mem.PageSize, n*n)
		if err != nil {
			return false
		}
		for i := range a {
			if d := got[i] - a[i]; d > 1e-5 || d < -1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownOpcodeFaults(t *testing.T) {
	g, env, _ := newGPU(t)
	g.Submit([]EngineCmd{Cmd(99)}, 1)
	env.Run()
	if g.Faults != 1 {
		t.Fatalf("faults = %d, want 1", g.Faults)
	}
}
