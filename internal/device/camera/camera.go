// Package camera simulates a UVC webcam sensor — the Logitech C920 of the
// paper's Table 1. When streaming, the sensor produces MJPG frames at its
// fixed exposure rate (~29.5 fps, matching §6.1.6) and DMA-writes each into
// the next queued buffer.
package camera

import (
	"paradice/internal/iommu"
	"paradice/internal/sim"
)

// FramePeriod is the sensor's frame interval: ~29.5 fps at every supported
// resolution — the sensor, not the bus or host, is the bottleneck.
const FramePeriod = 33900 * sim.Microsecond

// Resolution is a supported capture mode.
type Resolution struct{ W, H int }

// Resolutions the paper tests (the camera's three highest for MJPG).
var Resolutions = []Resolution{
	{1280, 720},
	{1600, 896},
	{1920, 1080},
}

// queuedBuf describes where the next frame should land: a scatter list of
// page-sized bus-address chunks.
type queuedBuf struct {
	index int
	chunk []iommu.BusAddr
	size  int
}

// Device is the sensor.
type Device struct {
	env *sim.Env
	dma *iommu.DMA

	streaming bool
	res       Resolution
	queue     []queuedBuf
	seq       uint32
	// onFrame notifies the driver a buffer was filled.
	onFrame func(index int, seq uint32)

	// Frames counts captured frames; DMAFaults counts rejected writes.
	Frames    uint64
	DMAFaults uint64
}

// New creates the sensor.
func New(env *sim.Env) *Device {
	return &Device{env: env, res: Resolutions[0]}
}

// Connect attaches the DMA path.
func (d *Device) Connect(dma *iommu.DMA) { d.dma = dma }

// Reset stops streaming and detaches the device (driver VM restart, §8).
func (d *Device) Reset() {
	d.StreamOff()
	d.dma = nil
	d.onFrame = nil
}

// OnFrame registers the driver's completion callback.
func (d *Device) OnFrame(fn func(index int, seq uint32)) { d.onFrame = fn }

// SetResolution selects a capture mode.
func (d *Device) SetResolution(r Resolution) { d.res = r }

// Resolution returns the current mode.
func (d *Device) Resolution() Resolution { return d.res }

// FrameBytes is the size of one captured MJPG frame (~2 bytes/pixel before
// compression; we keep it uncompressed for determinism).
func (d *Device) FrameBytes() int { return d.res.W * d.res.H * 2 }

// QueueBuffer hands the sensor a buffer to fill, as a page-chunk scatter
// list.
func (d *Device) QueueBuffer(index int, chunks []iommu.BusAddr, size int) {
	d.queue = append(d.queue, queuedBuf{index: index, chunk: chunks, size: size})
}

// StreamOn starts the exposure loop.
func (d *Device) StreamOn() {
	if d.streaming {
		return
	}
	d.streaming = true
	d.env.After(FramePeriod, d.tick)
}

// StreamOff stops capturing.
func (d *Device) StreamOff() {
	d.streaming = false
	d.queue = nil
}

// tick captures one frame into the oldest queued buffer (dropping the frame
// if none is queued, like real sensors) and re-arms.
func (d *Device) tick() {
	if !d.streaming {
		return
	}
	if len(d.queue) > 0 && d.dma != nil {
		b := d.queue[0]
		d.queue = d.queue[1:]
		d.seq++
		d.fill(b)
	}
	d.env.After(FramePeriod, d.tick)
}

// fill DMA-writes the frame pattern: a repeating sequence keyed by the
// frame number so consumers can verify content integrity.
func (d *Device) fill(b queuedBuf) {
	remaining := d.FrameBytes()
	if remaining > b.size {
		remaining = b.size
	}
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(uint32(i) + d.seq)
	}
	for _, bus := range b.chunk {
		if remaining <= 0 {
			break
		}
		n := len(page)
		if n > remaining {
			n = remaining
		}
		if err := d.dma.Write(bus, page[:n]); err != nil {
			d.DMAFaults++
			return
		}
		remaining -= n
	}
	d.Frames++
	if d.onFrame != nil {
		d.onFrame(b.index, d.seq)
	}
}

// FramePattern returns the expected byte at offset off of frame seq, for
// consumers verifying frame integrity.
func FramePattern(seq uint32, off int) byte {
	return byte(uint32(off%4096) + seq)
}
