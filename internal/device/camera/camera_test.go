package camera

import (
	"testing"

	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

func newRig(t testing.TB) (*Device, *sim.Env, *mem.PhysMem, []mem.SysPhys, []iommu.BusAddr) {
	t.Helper()
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	ram := phys.NewAllocator("ram", 0x1000_0000, 1024*mem.PageSize)
	const pages = 512
	base, err := ram.AllocPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	dom := iommu.NewDomain("cam")
	if err := dom.MapRange(0x100000, base, pages, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	d := New(env)
	d.Connect(&iommu.DMA{Dom: dom, Phys: phys})
	spas := make([]mem.SysPhys, pages)
	buses := make([]iommu.BusAddr, pages)
	for i := range spas {
		spas[i] = base + mem.SysPhys(i*mem.PageSize)
		buses[i] = iommu.BusAddr(0x100000 + i*mem.PageSize)
	}
	return d, env, phys, spas, buses
}

func TestFrameRateIsSensorLimited(t *testing.T) {
	d, env, _, _, buses := newRig(t)
	frames := 0
	var last sim.Time
	d.OnFrame(func(index int, seq uint32) {
		frames++
		last = env.Now()
		// Requeue immediately, like a streaming app.
		d.QueueBuffer(index, buses[:450], d.FrameBytes())
	})
	d.QueueBuffer(0, buses[:450], d.FrameBytes())
	d.StreamOn()
	env.RunUntil(sim.Time(1 * sim.Second))
	d.StreamOff()
	// ~29.5 fps: 29 full frames in one second.
	if frames < 28 || frames > 30 {
		t.Fatalf("frames in 1s = %d, want ~29.5", frames)
	}
	if last == 0 {
		t.Fatal("no frame timestamps")
	}
}

func TestFrameDroppedWithoutBuffer(t *testing.T) {
	d, env, _, _, buses := newRig(t)
	got := 0
	d.OnFrame(func(index int, seq uint32) { got++ })
	d.QueueBuffer(0, buses[:450], d.FrameBytes())
	d.StreamOn()
	// One queued buffer, streaming for 10 frame periods: only 1 capture.
	env.RunUntil(sim.Time(10 * FramePeriod))
	d.StreamOff()
	if got != 1 {
		t.Fatalf("frames = %d, want 1 (rest dropped)", got)
	}
}

func TestFramePatternWritten(t *testing.T) {
	d, env, phys, spas, buses := newRig(t)
	var seq uint32
	d.OnFrame(func(index int, s uint32) { seq = s })
	d.QueueBuffer(0, buses[:450], d.FrameBytes())
	d.StreamOn()
	env.RunUntil(sim.Time(2 * FramePeriod))
	d.StreamOff()
	if seq == 0 {
		t.Fatal("no frame captured")
	}
	buf := make([]byte, 64)
	if err := phys.Read(spas[0]+100, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != FramePattern(seq, 100+i) {
			t.Fatalf("byte %d = %#x, want pattern %#x", i, b, FramePattern(seq, 100+i))
		}
	}
}

func TestResolutionsAndFrameBytes(t *testing.T) {
	d, _, _, _, _ := newRig(t)
	for _, r := range Resolutions {
		d.SetResolution(r)
		if d.FrameBytes() != r.W*r.H*2 {
			t.Fatalf("%dx%d: FrameBytes = %d", r.W, r.H, d.FrameBytes())
		}
	}
	if d.Resolution() != Resolutions[len(Resolutions)-1] {
		t.Fatal("SetResolution did not stick")
	}
}

func TestDMAFaultCounted(t *testing.T) {
	d, env, _, _, _ := newRig(t)
	d.QueueBuffer(0, []iommu.BusAddr{0xDEAD000}, 4096) // unmapped
	d.StreamOn()
	env.RunUntil(sim.Time(2 * FramePeriod))
	d.StreamOff()
	if d.DMAFaults == 0 {
		t.Fatal("unmapped buffer capture did not fault")
	}
	if d.Frames != 0 {
		t.Fatalf("frames = %d despite fault", d.Frames)
	}
}

func TestStreamOffStopsTicks(t *testing.T) {
	d, env, _, _, buses := newRig(t)
	got := 0
	d.OnFrame(func(index int, s uint32) {
		got++
		d.QueueBuffer(index, buses[:450], d.FrameBytes())
	})
	d.QueueBuffer(0, buses[:450], d.FrameBytes())
	d.StreamOn()
	env.RunUntil(sim.Time(3 * FramePeriod))
	d.StreamOff()
	before := got
	env.RunUntil(env.Now().Add(10 * FramePeriod))
	if got != before {
		t.Fatalf("frames captured after StreamOff: %d -> %d", before, got)
	}
}
