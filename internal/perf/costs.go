// Package perf holds the calibrated cost model for the Paradice simulation.
//
// Every constant here is the simulated time charged for one architectural
// action. The values are calibrated so that the microbenchmarks of the
// paper's §6.1.1 come out at the numbers the authors measured on their
// i7-3770 testbed (35 µs forwarded no-op with interrupts, 2 µs with polling,
// 39/55/296/179 µs mouse latency, 1 Gbps wire rate), and every figure is
// then *derived* from these shared constants — no experiment has private
// tuning knobs. EXPERIMENTS.md documents the calibration.
package perf

import "paradice/internal/sim"

const (
	// CostSyscall is the entry+exit cost of a system call in the guest or
	// native kernel.
	CostSyscall = 500 * sim.Nanosecond

	// CostInterVMIRQ is the delivery latency of one inter-VM interrupt
	// (event channel + vCPU kick). The paper attributes "most" of the 35 µs
	// no-op forwarding latency to the two inter-VM interrupts of a
	// round trip (§6.1.1).
	CostInterVMIRQ = 16 * sim.Microsecond

	// CostPost is the frontend's cost to serialize a file operation's
	// arguments into a shared-page slot (or the backend's to read them).
	CostPost = 400 * sim.Nanosecond

	// CostComplete is the backend's cost to serialize a response (or the
	// frontend's to read it).
	CostComplete = 300 * sim.Nanosecond

	// CostPollCross is the latency for a polling peer to observe a
	// shared-page update (cache-line transfer between cores). Together with
	// CostPost/CostComplete this yields the ~2 µs polled no-op of §6.1.1.
	CostPollCross = 300 * sim.Nanosecond

	// CostHypercall is one driver-VM -> hypervisor transition (VM exit,
	// dispatch, VM entry).
	CostHypercall = 400 * sim.Nanosecond

	// CostVMExitIRQ is the extra latency a hardware interrupt suffers when
	// it must be routed through the hypervisor into a VM (device
	// assignment). Calibrated from the paper's mouse numbers:
	// native 39 µs vs direct assignment 55 µs.
	CostVMExitIRQ = 16 * sim.Microsecond

	// CostWakeup is the scheduler latency to wake a thread sleeping on a
	// driver wait queue (wait-queue wake to running), calibrated from the
	// paper's native mouse latency: event at driver -> woken reader's next
	// read reaching the driver took 39 µs natively, which is one wait-queue
	// wake plus a system call. The Paradice mouse path crosses several such
	// wakes, which is where its 296 µs comes from.
	CostWakeup = 38 * sim.Microsecond

	// CostNativeIRQ is the device-interrupt delivery latency on bare metal
	// (no hypervisor in the path).
	CostNativeIRQ = 500 * sim.Nanosecond

	// CostCopyPerPage is the per-page cost of the hypervisor's assisted
	// copy: one guest page-table walk, one EPT walk, and the copy itself.
	CostCopyPerPage = 300 * sim.Nanosecond

	// CostCopyPerKB is the incremental copy cost per kilobyte
	// (~3.3 GB/s effective memcpy bandwidth).
	CostCopyPerKB = 300 * sim.Nanosecond

	// CostMapPage is the hypervisor work to map one page cross-VM: fix the
	// EPT, walk and fix the guest page table's last level.
	CostMapPage = 2 * sim.Microsecond

	// CostMapCacheHit is the backend's cost to find and authorize one cached
	// grant mapping (a lookup plus the ref/kind/range check) before moving
	// data through it — the amortized replacement for a full grant validation
	// plus per-page walks on every request.
	CostMapCacheHit = 250 * sim.Nanosecond

	// CostMapMemcpyPerKB is the per-kilobyte cost of moving data through an
	// already-established cross-VM mapping: a plain memcpy with no guest
	// page-table or EPT software walks in the loop (~6.7 GB/s, vs the
	// assisted copy's 3.3 GB/s effective bandwidth). Together with
	// CostMapPage — charged per page at BOTH establishment and teardown —
	// this produces the copy-vs-map crossover of the "Bulk transfer" section
	// in EXPERIMENTS.md: because the per-operation saving is itself roughly
	// per-page, the rotation overhead amortizes away near a fixed reuse rate
	// (~5 operations per mapping) at any size, and beyond it the cached
	// mapping wins by a margin that grows with transfer size.
	CostMapMemcpyPerKB = 150 * sim.Nanosecond

	// CostPageFault is the guest-side cost of taking a page fault and
	// entering the fault handler.
	CostPageFault = 1 * sim.Microsecond

	// CostGrantDeclare is the frontend cost of writing one grant entry and
	// the hypervisor cost of validating one memory operation against it.
	CostGrantDeclare = 150 * sim.Nanosecond

	// CostGrantEntry is the incremental cost of each additional grant entry
	// in a batched declare hypercall (Config.GrantBatch): the first entry
	// pays the full CostGrantDeclare (the crossing plus the slot write),
	// later entries in the same vectored call only pay the slot write.
	CostGrantEntry = 30 * sim.Nanosecond

	// CostTLBHit is the hypervisor's cost to serve one page translation (or
	// one cached grant authorization) out of the software TLB (Config.TLB)
	// instead of performing the full guest-PT + EPT walk. Calibrated well
	// below CostCopyPerPage/CostGrantDeclare — a tagged cache lookup, no
	// page-table memory touches.
	CostTLBHit = 40 * sim.Nanosecond

	// CostDriverNoop is the device driver's own handling cost for a trivial
	// file operation (native no-op ioctl path).
	CostDriverNoop = 300 * sim.Nanosecond

	// PollWindow is how long the CVD frontend/backend busy-poll the shared
	// page before falling back to interrupts (§5.1: 200 µs, chosen
	// empirically).
	PollWindow = 200 * sim.Microsecond

	// CostWatchdogPing is the supervisor's work to post one heartbeat into a
	// channel's ring page (a header write plus the doorbell bookkeeping).
	// The heartbeat round trip itself then pays the normal interrupt
	// delivery costs, so a healthy ack lands ~2·CostInterVMIRQ later.
	CostWatchdogPing = 500 * sim.Nanosecond

	// CostDriverVMRestart is a full driver-VM reboot: tearing down the dead
	// VM, booting a fresh kernel, and re-initializing every device driver
	// (§8's "simply restarting the driver VM" is simple, not free). The
	// value models a minimal driver-domain boot; together with the
	// watchdog's detection latency it makes MTTR a measurable virtual-clock
	// quantity — see the "Recovery" section of EXPERIMENTS.md.
	CostDriverVMRestart = 100 * sim.Millisecond

	// CostHandoverSwitch is the commit step of a planned driver-VM handover:
	// re-binding every channel's ring to the pre-booted, pre-warmed successor
	// and re-pointing device assignments. The boot itself (CostDriverVMRestart)
	// was already paid during the prepare stage, while the predecessor was
	// still serving — which is why a handover's service pause is this, not
	// that.
	CostHandoverSwitch = 100 * sim.Microsecond

	// CostBatchDescriptor is the backend's cost to deserialize one
	// submission batch descriptor (the count word plus the slot bitmap)
	// when a flushed doorbell announces a vector of posted slots. Paid once
	// per consumed batch, regardless of batch size — the amortization that
	// makes multi-entry submission cheaper than per-post doorbells.
	CostBatchDescriptor = 100 * sim.Nanosecond

	// AdaptivePollGap is the adaptive transport's stance threshold: when a
	// channel's EWMA of inter-arrival gaps drops below this, requests are
	// arriving faster than an interrupt round trip can be amortized
	// (2·CostInterVMIRQ — the two crossings a forwarded operation pays) and
	// the channel switches to poll stance; above it, interrupts are
	// re-armed, NAPI-style.
	AdaptivePollGap = 2 * CostInterVMIRQ

	// CostNetmapSync is the fixed kernel cost of one netmap TX-ring sync
	// (the poll handler's ring scan and doorbell).
	CostNetmapSync = 600 * sim.Nanosecond

	// CostNetmapPerPkt is the driver's per-descriptor cost within a sync.
	CostNetmapPerPkt = 150 * sim.Nanosecond
)

// Copy returns the simulated duration of a hypervisor-assisted copy of n
// bytes spanning the given number of pages.
func Copy(nbytes, npages int) sim.Duration {
	return sim.Duration(npages)*CostCopyPerPage + sim.Duration(nbytes)*CostCopyPerKB/1024
}

// MapCopy returns the duration of moving nbytes through an established
// grant mapping (no per-page walks; the mapping setup was charged once at
// CostMapPage per page when the cache entry was created).
func MapCopy(nbytes int) sim.Duration {
	return sim.Duration(nbytes) * CostMapMemcpyPerKB / 1024
}

// Charge advances simulated time by d if running in process context.
// It is a no-op in scheduler/callback context (interrupt handlers are
// modeled as instantaneous; their latency is charged at delivery).
func Charge(e *sim.Env, d sim.Duration) {
	if p := e.CurrentProc(); p != nil {
		p.Advance(d)
	}
}
