package perf

import (
	"testing"

	"paradice/internal/sim"
)

func TestCopyCost(t *testing.T) {
	// One page-spanning 4-byte copy: a walk plus a sliver of bandwidth.
	if got := Copy(4, 1); got < CostCopyPerPage || got > CostCopyPerPage+10 {
		t.Fatalf("Copy(4,1) = %v", got)
	}
	// A 1 MiB copy: bandwidth term ≈ 300µs, walks ≈ 77µs.
	got := Copy(1<<20, 256)
	want := 256*CostCopyPerPage + 1024*CostCopyPerKB
	if got != want {
		t.Fatalf("Copy(1MiB,256) = %v, want %v", got, want)
	}
}

func TestChargeOnlyInProcessContext(t *testing.T) {
	env := sim.NewEnv()
	// In callback context Charge is a no-op.
	env.After(0, func() { Charge(env, 100*sim.Microsecond) })
	env.Run()
	if env.Now() != 0 {
		t.Fatalf("callback Charge advanced the clock to %v", env.Now())
	}
	// In process context it advances simulated time.
	var end sim.Time
	env.RunFunc("p", func(p *sim.Proc) {
		Charge(env, 100*sim.Microsecond)
		end = p.Now()
	})
	if end != sim.Time(100*sim.Microsecond) {
		t.Fatalf("process Charge ended at %v", end)
	}
}

// The no-op round-trip budget of §6.1.1 must hold arithmetically: two
// inter-VM interrupts dominate the interrupt-mode latency, and the polled
// path is a couple of microseconds.
func TestNoopBudgets(t *testing.T) {
	intRT := CostSyscall + CostPost + 2*CostInterVMIRQ + CostComplete + CostPost + CostComplete
	if intRT < 33*sim.Microsecond || intRT > 37*sim.Microsecond {
		t.Fatalf("interrupt no-op budget = %v, want ~35µs", intRT)
	}
	pollRT := CostSyscall + CostPost + 2*CostPollCross + CostComplete + CostPost + CostComplete
	if pollRT > 4*sim.Microsecond {
		t.Fatalf("polled no-op budget = %v, want ~2µs", pollRT)
	}
}
