package iommu

import (
	"encoding/binary"

	"paradice/internal/faults"
	"paradice/internal/mem"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// DMA is a device's path to system memory: every access translates through
// the device's IOMMU domain, page by page, before touching physical memory.
// Devices have no other way to reach system RAM.
type DMA struct {
	Dom  *Domain
	Phys *mem.PhysMem
	// Env, when set, lets the fault-injection layer force translation
	// faults on this path ("iommu.translate"). Nil is fine: injection is
	// then simply disabled.
	Env *sim.Env
}

// Read copies len(buf) bytes from bus address bus into buf.
func (d *DMA) Read(bus BusAddr, buf []byte) error {
	return d.access(bus, buf, mem.PermRead)
}

// Write copies data to bus address bus.
func (d *DMA) Write(bus BusAddr, data []byte) error {
	return d.access(bus, data, mem.PermWrite)
}

func (d *DMA) access(bus BusAddr, buf []byte, perm mem.Perm) error {
	tr := trace.Get(d.Env)
	tr.Add("iommu.dma.ops", 1)
	tr.Add("iommu.dma.bytes", uint64(len(buf)))
	if faults.Point(d.Env, "iommu.translate") != nil {
		// Injected translation fault: the access dies at the IOMMU before
		// touching physical memory, exactly like an unmapped bus address.
		tr.Add("iommu.dma.faults", 1)
		return &DMAFault{Addr: bus, Access: perm}
	}
	addr := uint64(bus)
	for len(buf) > 0 {
		spa, err := d.Dom.Translate(BusAddr(addr), perm)
		if err != nil {
			tr.Add("iommu.dma.faults", 1)
			if tr != nil {
				tr.Instant(tr.RIDOf(d.Env.CurrentProc()), "device", trace.LayerDevice, "dma-fault", d.Dom.Name())
			}
			return err
		}
		n := mem.PageSize - mem.PageOffset(addr)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if perm == mem.PermWrite {
			err = d.Phys.Write(spa, buf[:n])
		} else {
			err = d.Phys.Read(spa, buf[:n])
		}
		if err != nil {
			return err
		}
		addr += n
		buf = buf[n:]
	}
	return nil
}

// ReadU32 reads a little-endian 32-bit word.
func (d *DMA) ReadU32(bus BusAddr) (uint32, error) {
	var b [4]byte
	if err := d.Read(bus, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 writes a little-endian 32-bit word.
func (d *DMA) WriteU32(bus BusAddr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return d.Write(bus, b[:])
}

// ReadU64 reads a little-endian 64-bit word.
func (d *DMA) ReadU64(bus BusAddr) (uint64, error) {
	var b [8]byte
	if err := d.Read(bus, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word.
func (d *DMA) WriteU64(bus BusAddr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return d.Write(bus, b[:])
}
