package iommu

import (
	"errors"
	"testing"

	"paradice/internal/mem"
)

func TestMapRangeTranslate(t *testing.T) {
	d := NewDomain("nic")
	if err := d.MapRange(0x10000, 0x400000, 4, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	spa, err := d.Translate(0x12345, mem.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if spa != 0x402345 {
		t.Fatalf("Translate = %v, want spa:0x402345", spa)
	}
}

func TestUnmappedDMAFaults(t *testing.T) {
	d := NewDomain("nic")
	_, err := d.Translate(0x99000, mem.PermRead)
	var f *DMAFault
	if !errors.As(err, &f) || f.Mapped {
		t.Fatalf("err = %v, want unmapped DMAFault", err)
	}
}

func TestPermissionDenied(t *testing.T) {
	d := NewDomain("gpu")
	// Write-only-for-device emulation (§5.3 change iv): the buffer is
	// read-only to the device through the IOMMU.
	if err := d.AddPage(RegionGlobal, 0x10000, 0x400000, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	_, err := d.Translate(0x10000, mem.PermWrite)
	var f *DMAFault
	if !errors.As(err, &f) || !f.Mapped {
		t.Fatalf("err = %v, want mapped DMAFault", err)
	}
}

func TestRegionSwitchExclusivity(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(2, 0x20000, 0x500000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	// Nothing live yet: neither region is active.
	if _, err := d.Translate(0x10000, mem.PermRead); err == nil {
		t.Fatal("region-1 page live before switch")
	}
	if err := d.Switch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err != nil {
		t.Fatalf("region-1 page not live after switch: %v", err)
	}
	if _, err := d.Translate(0x20000, mem.PermRead); err == nil {
		t.Fatal("region-2 page live while region 1 active — device can cross regions")
	}
	if err := d.Switch(2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err == nil {
		t.Fatal("region-1 page still live after switch away")
	}
	if _, err := d.Translate(0x20000, mem.PermRead); err != nil {
		t.Fatalf("region-2 page not live: %v", err)
	}
}

func TestGlobalRegionSurvivesSwitches(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(RegionGlobal, 0x30000, 0x600000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	for _, r := range []RegionID{1, RegionGlobal, 1} {
		if err := d.Switch(r); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Translate(0x30000, mem.PermRead); err != nil {
			t.Fatalf("global page lost after switch to %d: %v", r, err)
		}
	}
}

func TestBusFrameUniqueAcrossRegions(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(2, 0x10000, 0x500000, mem.PermRW); err == nil {
		t.Fatal("same bus frame accepted in two regions")
	}
}

func TestSwitchToUnknownRegionFails(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.Switch(7); err == nil {
		t.Fatal("switch to unknown region succeeded")
	}
}

func TestUnmapHookFiresOnSwitch(t *testing.T) {
	d := NewDomain("gpu")
	var zeroed []mem.SysPhys
	d.SetUnmapHook(func(bus BusAddr, spa mem.SysPhys) { zeroed = append(zeroed, spa) })
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(1, 0x11000, 0x401000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(RegionGlobal); err != nil {
		t.Fatal(err)
	}
	if len(zeroed) != 2 {
		t.Fatalf("unmap hook ran %d times, want 2", len(zeroed))
	}
}

func TestRemovePage(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(RegionGlobal, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.RemovePage(RegionGlobal, 0x10000); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err == nil {
		t.Fatal("page still live after remove")
	}
	if err := d.RemovePage(RegionGlobal, 0x10000); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestDMAReadWrite(t *testing.T) {
	phys := mem.NewPhysMem()
	a := phys.NewAllocator("ram", 0x400000, 8*mem.PageSize)
	spa, _ := a.AllocPages(2)
	d := NewDomain("nic")
	if err := d.MapRange(0x10000, spa, 2, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	dma := &DMA{Dom: d, Phys: phys}
	data := make([]byte, mem.PageSize+100) // crosses the page boundary
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := dma.Write(0x10800, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dma.Read(0x10800, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if err := dma.WriteU64(0x10000, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := dma.ReadU64(0x10000); v != 99 {
		t.Fatalf("U64 = %d", v)
	}
	if err := dma.WriteU32(0x10008, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := dma.ReadU32(0x10008); v != 77 {
		t.Fatalf("U32 = %d", v)
	}
}

func TestDMAStopsAtRegionEdge(t *testing.T) {
	phys := mem.NewPhysMem()
	a := phys.NewAllocator("ram", 0x400000, 8*mem.PageSize)
	spa, _ := a.AllocPages(2)
	d := NewDomain("gpu")
	if err := d.AddPage(1, 0x10000, spa, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(1); err != nil {
		t.Fatal(err)
	}
	dma := &DMA{Dom: d, Phys: phys}
	// A DMA that starts inside the region but runs off its edge must fault.
	err := dma.Write(0x10F00, make([]byte, 512))
	var f *DMAFault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want DMAFault at the region edge", err)
	}
}
