package iommu

import (
	"errors"
	"testing"

	"paradice/internal/mem"
)

func TestMapRangeTranslate(t *testing.T) {
	d := NewDomain("nic")
	if err := d.MapRange(0x10000, 0x400000, 4, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	spa, err := d.Translate(0x12345, mem.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if spa != 0x402345 {
		t.Fatalf("Translate = %v, want spa:0x402345", spa)
	}
}

func TestUnmappedDMAFaults(t *testing.T) {
	d := NewDomain("nic")
	_, err := d.Translate(0x99000, mem.PermRead)
	var f *DMAFault
	if !errors.As(err, &f) || f.Mapped {
		t.Fatalf("err = %v, want unmapped DMAFault", err)
	}
}

func TestPermissionDenied(t *testing.T) {
	d := NewDomain("gpu")
	// Write-only-for-device emulation (§5.3 change iv): the buffer is
	// read-only to the device through the IOMMU.
	if err := d.AddPage(RegionGlobal, 0x10000, 0x400000, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	_, err := d.Translate(0x10000, mem.PermWrite)
	var f *DMAFault
	if !errors.As(err, &f) || !f.Mapped {
		t.Fatalf("err = %v, want mapped DMAFault", err)
	}
}

func TestRegionSwitchExclusivity(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(2, 0x20000, 0x500000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	// Nothing live yet: neither region is active.
	if _, err := d.Translate(0x10000, mem.PermRead); err == nil {
		t.Fatal("region-1 page live before switch")
	}
	if err := d.Switch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err != nil {
		t.Fatalf("region-1 page not live after switch: %v", err)
	}
	if _, err := d.Translate(0x20000, mem.PermRead); err == nil {
		t.Fatal("region-2 page live while region 1 active — device can cross regions")
	}
	if err := d.Switch(2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err == nil {
		t.Fatal("region-1 page still live after switch away")
	}
	if _, err := d.Translate(0x20000, mem.PermRead); err != nil {
		t.Fatalf("region-2 page not live: %v", err)
	}
}

func TestGlobalRegionSurvivesSwitches(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(RegionGlobal, 0x30000, 0x600000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	for _, r := range []RegionID{1, RegionGlobal, 1} {
		if err := d.Switch(r); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Translate(0x30000, mem.PermRead); err != nil {
			t.Fatalf("global page lost after switch to %d: %v", r, err)
		}
	}
}

func TestBusFrameUniqueAcrossRegions(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(2, 0x10000, 0x500000, mem.PermRW); err == nil {
		t.Fatal("same bus frame accepted in two regions")
	}
}

func TestSwitchToUnknownRegionFails(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.Switch(7); err == nil {
		t.Fatal("switch to unknown region succeeded")
	}
}

func TestUnmapHookFiresOnSwitch(t *testing.T) {
	d := NewDomain("gpu")
	var zeroed []mem.SysPhys
	d.SetUnmapHook(func(bus BusAddr, spa mem.SysPhys) { zeroed = append(zeroed, spa) })
	if err := d.AddPage(1, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPage(1, 0x11000, 0x401000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(RegionGlobal); err != nil {
		t.Fatal(err)
	}
	if len(zeroed) != 2 {
		t.Fatalf("unmap hook ran %d times, want 2", len(zeroed))
	}
}

func TestRemovePage(t *testing.T) {
	d := NewDomain("gpu")
	if err := d.AddPage(RegionGlobal, 0x10000, 0x400000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.RemovePage(RegionGlobal, 0x10000); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x10000, mem.PermRead); err == nil {
		t.Fatal("page still live after remove")
	}
	if err := d.RemovePage(RegionGlobal, 0x10000); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestDMAReadWrite(t *testing.T) {
	phys := mem.NewPhysMem()
	a := phys.NewAllocator("ram", 0x400000, 8*mem.PageSize)
	spa, _ := a.AllocPages(2)
	d := NewDomain("nic")
	if err := d.MapRange(0x10000, spa, 2, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	dma := &DMA{Dom: d, Phys: phys}
	data := make([]byte, mem.PageSize+100) // crosses the page boundary
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := dma.Write(0x10800, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dma.Read(0x10800, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if err := dma.WriteU64(0x10000, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := dma.ReadU64(0x10000); v != 99 {
		t.Fatalf("U64 = %d", v)
	}
	if err := dma.WriteU32(0x10008, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := dma.ReadU32(0x10008); v != 77 {
		t.Fatalf("U32 = %d", v)
	}
}

func TestDMAStopsAtRegionEdge(t *testing.T) {
	phys := mem.NewPhysMem()
	a := phys.NewAllocator("ram", 0x400000, 8*mem.PageSize)
	spa, _ := a.AllocPages(2)
	d := NewDomain("gpu")
	if err := d.AddPage(1, 0x10000, spa, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(1); err != nil {
		t.Fatal(err)
	}
	dma := &DMA{Dom: d, Phys: phys}
	// A DMA that starts inside the region but runs off its edge must fault.
	err := dma.Write(0x10F00, make([]byte, 512))
	var f *DMAFault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want DMAFault at the region edge", err)
	}
}

// GrantPages installs a contiguous bus run over scattered system pages in
// RegionGlobal (a grant-mapped guest buffer as a DMA target), all-or-nothing.
func TestGrantPagesInstallsScatteredBacking(t *testing.T) {
	phys := mem.NewPhysMem()
	a := phys.NewAllocator("ram", 0x400000, 16*mem.PageSize)
	var spas []mem.SysPhys
	for i := 0; i < 3; i++ {
		spa, err := a.AllocPages(1)
		if err != nil {
			t.Fatal(err)
		}
		spas = append(spas, spa)
	}
	d := NewDomain("nic")
	if err := d.GrantPages(0x80000, spas, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	for i, want := range spas {
		got, err := d.Translate(0x80000+BusAddr(i*mem.PageSize), mem.PermWrite)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("page %d translates to %#x, want %#x", i, uint64(got), uint64(want))
		}
	}
	// Granted pages live in RegionGlobal: a region switch does not evict them.
	if err := d.AddPage(1, 0x10000, spas[0], mem.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := d.Switch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Translate(0x80000, mem.PermWrite); err != nil {
		t.Fatalf("granted page evicted by region switch: %v", err)
	}
}

// A GrantPages call that collides with an existing mapping mid-run rolls
// back the pages it already installed — no half-mapped buffer survives.
func TestGrantPagesRollsBackOnCollision(t *testing.T) {
	phys := mem.NewPhysMem()
	a := phys.NewAllocator("ram", 0x400000, 16*mem.PageSize)
	spa0, _ := a.AllocPages(1)
	spa1, _ := a.AllocPages(1)
	spa2, _ := a.AllocPages(1)
	d := NewDomain("nic")
	// Pre-occupy the bus frame the third page would land on.
	if err := d.AddPage(RegionGlobal, 0x80000+2*BusAddr(mem.PageSize), spa2, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	err := d.GrantPages(0x80000, []mem.SysPhys{spa0, spa1, spa2}, mem.PermRW)
	if err == nil {
		t.Fatal("colliding GrantPages succeeded")
	}
	// The first two pages were rolled back; only the pre-existing mapping
	// remains.
	for i := 0; i < 2; i++ {
		if _, terr := d.Translate(0x80000+BusAddr(i*mem.PageSize), mem.PermRead); terr == nil {
			t.Fatalf("page %d survived the rollback", i)
		}
	}
	if _, terr := d.Translate(0x80000+2*BusAddr(mem.PageSize), mem.PermRead); terr != nil {
		t.Fatalf("pre-existing mapping damaged by rollback: %v", terr)
	}
}

// RevokePages withdraws a granted run and is idempotent — revoking again, or
// revoking a range that was only partially installed, still succeeds.
func TestRevokePagesIdempotent(t *testing.T) {
	phys := mem.NewPhysMem()
	a := phys.NewAllocator("ram", 0x400000, 16*mem.PageSize)
	spa0, _ := a.AllocPages(1)
	spa1, _ := a.AllocPages(1)
	d := NewDomain("nic")
	if err := d.GrantPages(0x80000, []mem.SysPhys{spa0, spa1}, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := d.RevokePages(0x80000, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var f *DMAFault
		_, err := d.Translate(0x80000+BusAddr(i*mem.PageSize), mem.PermRead)
		if !errors.As(err, &f) {
			t.Fatalf("page %d: err = %v, want DMAFault after revoke", i, err)
		}
	}
	if err := d.RevokePages(0x80000, 2); err != nil {
		t.Fatal("second revoke of the same run failed")
	}
	// Over-length revoke (covers pages never granted) also succeeds.
	if err := d.RevokePages(0x80000, 8); err != nil {
		t.Fatal("revoke past the granted run failed")
	}
}
