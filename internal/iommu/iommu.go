// Package iommu simulates the I/O Memory Management Unit Paradice relies on
// for two jobs: confining an assigned device's DMA to the driver VM
// (device assignment, §3.1), and — under device data isolation (§4.2) —
// restricting the device to the protected memory region of one guest VM at
// a time, with the hypervisor switching regions on request.
package iommu

import (
	"fmt"

	"paradice/internal/mem"
)

// BusAddr is the address a device places on the bus for DMA. With device
// assignment the IOMMU is programmed so bus addresses equal the driver VM's
// guest-physical addresses.
type BusAddr uint64

// RegionID identifies a protected memory region. RegionGlobal holds pages
// that must stay mapped regardless of which guest's region is active (e.g.
// the GPU's address-translation buffers, which §5.3 creates "on all memory
// regions").
type RegionID int

// RegionGlobal is the always-mapped region.
const RegionGlobal RegionID = 0

// DMAFault reports a device DMA the IOMMU refused.
type DMAFault struct {
	Addr   BusAddr
	Access mem.Perm
	Mapped bool
}

func (e *DMAFault) Error() string {
	if !e.Mapped {
		return fmt.Sprintf("iommu: DMA fault at bus:%#x (unmapped)", uint64(e.Addr))
	}
	return fmt.Sprintf("iommu: DMA fault at bus:%#x (access %v denied)", uint64(e.Addr), e.Access)
}

type entry struct {
	spa  mem.SysPhys
	perm mem.Perm
}

// Domain is the translation domain of one assigned device.
type Domain struct {
	name    string
	live    map[uint64]entry              // bus frame -> entry, currently active
	regions map[RegionID]map[uint64]entry // staged per-region mappings
	active  RegionID
	// onUnmapLive, when set, runs for every page leaving the live table
	// during a region switch — the hypervisor hooks this to zero pages.
	onUnmapLive func(bus BusAddr, spa mem.SysPhys)
}

// NewDomain returns a domain with no mappings and RegionGlobal active.
func NewDomain(name string) *Domain {
	return &Domain{
		name:    name,
		live:    make(map[uint64]entry),
		regions: map[RegionID]map[uint64]entry{RegionGlobal: {}},
	}
}

// Name returns the domain's name (the device it serves).
func (d *Domain) Name() string { return d.name }

func frame(a BusAddr) uint64 { return uint64(a) >> mem.PageShift }

// MapRange installs identity-permission mappings for a contiguous run of
// pages, bus -> spa. This is plain device assignment: "the hypervisor
// programs the IOMMU to allow the device to DMA to all physical addresses in
// the driver VM". The pages land in RegionGlobal and the live table.
func (d *Domain) MapRange(bus BusAddr, spa mem.SysPhys, npages int, perm mem.Perm) error {
	for i := 0; i < npages; i++ {
		b := bus + BusAddr(i*mem.PageSize)
		s := spa + mem.SysPhys(i*mem.PageSize)
		if err := d.AddPage(RegionGlobal, b, s, perm); err != nil {
			return err
		}
	}
	return nil
}

// AddPage stages a mapping in a region. Pages in RegionGlobal or in the
// active region also enter the live table immediately.
func (d *Domain) AddPage(region RegionID, bus BusAddr, spa mem.SysPhys, perm mem.Perm) error {
	if !mem.PageAligned(uint64(bus)) || !mem.PageAligned(uint64(spa)) {
		return fmt.Errorf("iommu: unaligned AddPage bus:%#x -> %v", uint64(bus), spa)
	}
	r := d.regions[region]
	if r == nil {
		r = make(map[uint64]entry)
		d.regions[region] = r
	}
	f := frame(bus)
	if _, ok := r[f]; ok {
		return fmt.Errorf("iommu: bus:%#x already mapped in region %d", uint64(bus), region)
	}
	// A bus frame must belong to exactly one region, or live-table entries
	// would be ambiguous.
	for id, other := range d.regions {
		if id != region {
			if _, ok := other[f]; ok {
				return fmt.Errorf("iommu: bus:%#x already mapped in region %d", uint64(bus), id)
			}
		}
	}
	e := entry{spa: spa, perm: perm}
	r[f] = e
	if region == RegionGlobal || region == d.active {
		d.live[f] = e
	}
	return nil
}

// GrantPages installs mappings for a run of contiguous bus pages backed by
// NON-contiguous system pages — a grant-mapped guest buffer, whose pages
// come from wherever the guest's allocator put them. The pages land in
// RegionGlobal so the device can DMA straight into the guest buffer
// regardless of the active protected region (the buffer's isolation is the
// grant check, not the region machinery). Installed all-or-nothing.
func (d *Domain) GrantPages(bus BusAddr, spas []mem.SysPhys, perm mem.Perm) error {
	for i, spa := range spas {
		if err := d.AddPage(RegionGlobal, bus+BusAddr(i*mem.PageSize), spa, perm); err != nil {
			_ = d.RevokePages(bus, i)
			return err
		}
	}
	return nil
}

// RevokePages withdraws npages contiguous bus pages installed by
// GrantPages. Pages already gone are skipped — revocation after a partial
// install or a region teardown must still succeed.
func (d *Domain) RevokePages(bus BusAddr, npages int) error {
	for i := 0; i < npages; i++ {
		f := frame(bus + BusAddr(i*mem.PageSize))
		if _, ok := d.regions[RegionGlobal][f]; !ok {
			continue
		}
		delete(d.regions[RegionGlobal], f)
		delete(d.live, f)
	}
	return nil
}

// RemovePage withdraws a staged mapping (and its live entry, if any).
func (d *Domain) RemovePage(region RegionID, bus BusAddr) error {
	r := d.regions[region]
	f := frame(bus)
	if r == nil {
		return fmt.Errorf("iommu: unknown region %d", region)
	}
	if _, ok := r[f]; !ok {
		return fmt.Errorf("iommu: bus:%#x not mapped in region %d", uint64(bus), region)
	}
	delete(r, f)
	delete(d.live, f)
	return nil
}

// Active returns the currently active region.
func (d *Domain) Active() RegionID { return d.active }

// Switch activates region: all pages of the previously active region leave
// the live table (invoking the unmap hook) and the new region's pages enter
// it. RegionGlobal pages stay put. Switching to the active region is a no-op.
func (d *Domain) Switch(region RegionID) error {
	if region == d.active {
		return nil
	}
	if _, ok := d.regions[region]; !ok && region != RegionGlobal {
		return fmt.Errorf("iommu: switch to unknown region %d", region)
	}
	if old := d.regions[d.active]; d.active != RegionGlobal {
		for f, e := range old {
			delete(d.live, f)
			if d.onUnmapLive != nil {
				d.onUnmapLive(BusAddr(f<<mem.PageShift), e.spa)
			}
		}
	}
	d.active = region
	if region != RegionGlobal {
		for f, e := range d.regions[region] {
			d.live[f] = e
		}
	}
	return nil
}

// SetUnmapHook registers fn to run for every page leaving the live table on
// a region switch. The hypervisor uses it to zero recycled pages (§5.3).
func (d *Domain) SetUnmapHook(fn func(bus BusAddr, spa mem.SysPhys)) {
	d.onUnmapLive = fn
}

// Translate resolves a device DMA access. Only live mappings translate;
// anything else faults — this is the check that stops a compromised driver
// VM from programming the device to copy a victim's buffer out of its
// region (§4.2, attack three).
func (d *Domain) Translate(bus BusAddr, access mem.Perm) (mem.SysPhys, error) {
	e, ok := d.live[frame(bus)]
	if !ok {
		return 0, &DMAFault{Addr: bus, Access: access}
	}
	if !e.perm.Allows(access) {
		return 0, &DMAFault{Addr: bus, Access: access, Mapped: true}
	}
	return e.spa + mem.SysPhys(mem.PageOffset(uint64(bus))), nil
}

// RegionPages returns how many pages are staged in a region (diagnostics).
func (d *Domain) RegionPages(region RegionID) int { return len(d.regions[region]) }

// LivePages returns the size of the live table (diagnostics).
func (d *Domain) LivePages() int { return len(d.live) }
