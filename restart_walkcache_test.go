package paradice_test

// Machine-level coverage for the translation caches across a driver VM
// restart: RestartDriverVM must flush every VM's software TLB and
// grant-validation cache wholesale — nothing proven before the restart may
// authorize or translate anything after it — yet service resumes and the
// caches warm again, exactly like the grant-map cache in
// restart_fastpath_test.go.

import (
	"testing"

	"paradice"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
)

func TestDriverVMRestartFlushesTranslationCaches(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{TLB: true, GrantBatch: true}, paradice.PathGPU)
	tr := m.StartTrace()
	t.Cleanup(func() { m.StopTrace() })

	noops := func(iters int) {
		t.Helper()
		p, err := gk.NewProcess("noop")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		p.SpawnTask("loop", func(tk *kernel.Task) {
			fd, err := tk.Open(paradice.PathGPU, 2)
			if err != nil {
				done <- err
				return
			}
			arg, err := p.Alloc(32)
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < iters; i++ {
				if _, err := tk.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		})
		m.Run()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// Warm both caches: repeated no-ops through the same user page.
	noops(3)
	met := tr.Metrics()
	warmHits := met.Counter("hv.tlb.hit")
	if warmHits == 0 {
		t.Fatal("three identical no-ops produced no TLB hits")
	}
	if met.Counter("hv.grant.cache.hit") == 0 {
		t.Fatal("batched declares produced no grant-cache validation hits")
	}
	invalBefore := met.Counter("hv.tlb.invalidate")

	// The restart must flush: the invalidation counter accounts for every
	// cached translation dropped.
	if err := m.RestartDriverVM(); err != nil {
		t.Fatal(err)
	}
	if met.Counter("hv.tlb.invalidate") <= invalBefore {
		t.Fatal("driver VM restart did not flush the translation caches")
	}

	// Post-restart service resumes through a fresh open (old fds are stale),
	// and the first operation RE-PROVES its translations — a TLB miss, not a
	// hit off pre-restart state — before the caches warm again.
	missBefore := met.Counter("hv.tlb.miss")
	hitBefore := met.Counter("hv.tlb.hit")
	noops(3)
	if met.Counter("hv.tlb.miss") <= missBefore {
		t.Fatal("post-restart operation was served from pre-restart translations")
	}
	if met.Counter("hv.tlb.hit") <= hitBefore {
		t.Fatal("caches did not warm again after the restart")
	}
}
