package paradice_test

// This file regenerates every table and figure of the paper's evaluation as
// testing.B benchmarks, reporting each experiment's metric in the paper's
// units via b.ReportMetric. Beyond reporting, each benchmark asserts the
// figure's qualitative claims (who wins, where the crossover falls), so a
// cost-model regression fails `go test -bench`.
//
// The benchmarks run the experiment once per b.N loop; the simulation is
// deterministic, so a single iteration is already the converged value.

import (
	"fmt"
	"strings"
	"testing"

	"paradice"
	"paradice/internal/bench"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// runOnce executes an experiment one time regardless of b.N and reports
// every row as a named metric.
func runOnce(b *testing.B, id string, check func(b *testing.B, rows []bench.Row)) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rows []bench.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = e.Run(true) // quick mode: deterministic, reduced sweep
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := strings.ReplaceAll(r.Series+"/"+r.X+"_"+r.Unit, " ", "_")
		b.ReportMetric(r.Value, name)
	}
	if check != nil {
		check(b, rows)
	}
}

// value finds a row by series and X label.
func value(b *testing.B, rows []bench.Row, series, x string) float64 {
	b.Helper()
	for _, r := range rows {
		if r.Series == series && r.X == x {
			return r.Value
		}
	}
	b.Fatalf("no row %s/%s", series, x)
	return 0
}

func BenchmarkNoopFileOpLatency(b *testing.B) {
	runOnce(b, "noop", func(b *testing.B, rows []bench.Row) {
		intLat := value(b, rows, "Paradice", "no-op fileop")
		pollLat := value(b, rows, "Paradice(P)", "no-op fileop")
		if intLat < 30 || intLat > 40 {
			b.Fatalf("interrupt no-op latency %.1fµs, paper ~35µs", intLat)
		}
		if pollLat > 4 {
			b.Fatalf("polled no-op latency %.1fµs, paper ~2µs", pollLat)
		}
	})
}

func BenchmarkFig2NetmapTX(b *testing.B) {
	runOnce(b, "fig2", func(b *testing.B, rows []bench.Row) {
		native4 := value(b, rows, "Native", "batch=4")
		poll4 := value(b, rows, "Paradice(P)", "batch=4")
		int4 := value(b, rows, "Paradice", "batch=4")
		int256 := value(b, rows, "Paradice", "batch=256")
		native256 := value(b, rows, "Native", "batch=256")
		// Paper: polling reaches near-native at batch 4; interrupts do not.
		if poll4 < 0.75*native4 {
			b.Fatalf("Paradice(P) batch=4 %.3f << native %.3f", poll4, native4)
		}
		if int4 > 0.5*native4 {
			b.Fatalf("Paradice(int) batch=4 %.3f unexpectedly near native %.3f", int4, native4)
		}
		// Everyone converges at large batches.
		if int256 < 0.9*native256 {
			b.Fatalf("Paradice(int) batch=256 %.3f has not converged to native %.3f", int256, native256)
		}
		// FreeBSD guest performs like the Linux guest (§6.1.2).
		for _, batch := range []string{"batch=1", "batch=64"} {
			l := value(b, rows, "Paradice", batch)
			f := value(b, rows, "Paradice(FL)", batch)
			if f < 0.9*l || f > 1.1*l {
				b.Fatalf("FreeBSD guest %s %.3f differs from Linux %.3f", batch, f, l)
			}
		}
	})
}

func BenchmarkFig3OpenGL(b *testing.B) {
	runOnce(b, "fig3", func(b *testing.B, rows []bench.Row) {
		for _, bm := range []string{"VBO", "VA", "DL"} {
			native := value(b, rows, "Native", bm)
			pInt := value(b, rows, "Paradice", bm)
			pPoll := value(b, rows, "Paradice(P)", bm)
			da := value(b, rows, "Device-Assign.", bm)
			// Device assignment is indistinguishable from native (§6.1.1).
			if da < 0.97*native {
				b.Fatalf("%s: device-assign %.1f below native %.1f", bm, da, native)
			}
			// Paradice with interrupts drops visibly on these cheap frames;
			// polling closes the gap (§6.1.3).
			if pInt > 0.95*native {
				b.Fatalf("%s: Paradice(int) %.1f unexpectedly at native %.1f", bm, pInt, native)
			}
			if pPoll < 0.93*native {
				b.Fatalf("%s: Paradice(P) %.1f did not close the gap to native %.1f", bm, pPoll, native)
			}
		}
	})
}

func BenchmarkFig4Games(b *testing.B) {
	runOnce(b, "fig4", func(b *testing.B, rows []bench.Row) {
		for _, game := range []string{"Tremulous", "OpenArena", "Nexuiz"} {
			for _, res := range []string{"800x600", "1680x1050"} {
				x := game + " " + res
				native := value(b, rows, "Native", x)
				pInt := value(b, rows, "Paradice", x)
				di := value(b, rows, "Paradice(DI)", x)
				// Demanding games: Paradice is close to native (§6.1.3).
				if pInt < 0.88*native {
					b.Fatalf("%s: Paradice %.1f more than 12%% below native %.1f", x, pInt, native)
				}
				// Data isolation has no noticeable impact.
				if di < 0.98*pInt {
					b.Fatalf("%s: DI %.1f noticeably below Paradice %.1f", x, di, pInt)
				}
			}
			// FPS falls with resolution.
			lo := value(b, rows, "Native", game+" 800x600")
			hi := value(b, rows, "Native", game+" 1680x1050")
			if hi >= lo {
				b.Fatalf("%s: FPS did not fall with resolution (%.1f -> %.1f)", game, lo, hi)
			}
		}
	})
}

func BenchmarkFig5OpenCL(b *testing.B) {
	runOnce(b, "fig5", func(b *testing.B, rows []bench.Row) {
		for _, order := range []string{"order=1", "order=100"} {
			native := value(b, rows, "Native", order)
			p := value(b, rows, "Paradice", order)
			di := value(b, rows, "Paradice(DI)", order)
			// All four configurations are near identical (§6.1.4).
			if p > 1.05*native || di > 1.05*native {
				b.Fatalf("%s: paradice %.3fs / DI %.3fs vs native %.3fs — not identical",
					order, p, di, native)
			}
		}
		// Time grows with order.
		if value(b, rows, "Native", "order=100") <= value(b, rows, "Native", "order=1") {
			b.Fatal("matmul time did not grow with order")
		}
	})
}

func BenchmarkFig6MultiVM(b *testing.B) {
	runOnce(b, "fig6", nil)
}

func BenchmarkMouseLatency(b *testing.B) {
	runOnce(b, "mouse", func(b *testing.B, rows []bench.Row) {
		native := value(b, rows, "Native", "latency")
		da := value(b, rows, "Device-Assign.", "latency")
		pInt := value(b, rows, "Paradice", "latency")
		pPoll := value(b, rows, "Paradice(P)", "latency")
		if !(native < da && da < pPoll && pPoll < pInt) {
			b.Fatalf("latency ordering violated: %.1f %.1f %.1f %.1f", native, da, pPoll, pInt)
		}
		if pInt >= 1000 {
			b.Fatalf("Paradice latency %.1fµs not below the 1ms input threshold", pInt)
		}
	})
}

func BenchmarkCameraFPS(b *testing.B) {
	runOnce(b, "camera", func(b *testing.B, rows []bench.Row) {
		for _, r := range rows {
			if r.Value < 29 || r.Value > 30 {
				b.Fatalf("%s %s: %.2f FPS, paper ~29.5 at every resolution", r.Series, r.X, r.Value)
			}
		}
	})
}

func BenchmarkAudioPlayback(b *testing.B) {
	runOnce(b, "audio", func(b *testing.B, rows []bench.Row) {
		base := rows[0].Value
		for _, r := range rows {
			if r.Value < 0.98*base || r.Value > 1.02*base {
				b.Fatalf("playback times differ across configurations: %v", rows)
			}
		}
	})
}

func BenchmarkAblationPollWindow(b *testing.B) {
	runOnce(b, "ablation", func(b *testing.B, rows []bench.Row) {
		interruptRT := value(b, rows, "no-op RT", "window=0 (interrupts)")
		paperRT := value(b, rows, "no-op RT", "window=200.000µs")
		if paperRT >= interruptRT/3 {
			b.Fatalf("200µs window RT %.1fµs did not beat interrupts %.1fµs", paperRT, interruptRT)
		}
		// The paper's 200µs window performs at least as well as every
		// smaller window on all three workloads.
		for _, series := range []string{"no-op RT", "netmap batch=4", "mouse latency"} {
			paper := value(b, rows, series, "window=200.000µs")
			small := value(b, rows, series, "window=10.000µs")
			if series == "netmap batch=4" {
				if paper < small {
					b.Fatalf("%s: 200µs window worse than 10µs", series)
				}
			} else if paper > small {
				b.Fatalf("%s: 200µs window worse than 10µs (%.1f vs %.1f)", series, paper, small)
			}
		}
	})
}

func BenchmarkBulkTransfer(b *testing.B) {
	runOnce(b, "bulk", func(b *testing.B, rows []bench.Row) {
		// The crossover: single-use mappings lose to the assisted copy,
		// well-reused mappings win.
		copy16 := value(b, rows, "assisted copy @16K", "R=1")
		if once := value(b, rows, "map cache @16K", "R=1"); once <= copy16 {
			b.Fatalf("single-use mapping %.1fµs beat the assisted copy %.1fµs", once, copy16)
		}
		if reused := value(b, rows, "map cache @16K", "R=16"); reused >= copy16 {
			b.Fatalf("R=16 mapping %.1fµs did not beat the assisted copy %.1fµs", reused, copy16)
		}
		// At high reuse the win grows with size.
		smallWin := value(b, rows, "assisted copy", "4K") - value(b, rows, "map cache (R=16)", "4K")
		bigWin := value(b, rows, "assisted copy", "64K") - value(b, rows, "map cache (R=16)", "64K")
		if bigWin <= smallWin || bigWin <= 0 {
			b.Fatalf("map-cache win did not grow with size: 4K %.2fµs, 64K %.2fµs", smallWin, bigWin)
		}
		// Coalescing: the 8-post burst shares IRQs instead of one per post.
		off := value(b, rows, "doorbell IRQs (8-post burst)", "window=0 (off)")
		on := value(b, rows, "doorbell IRQs (8-post burst)", "window=40.000µs")
		if on >= off/2 {
			b.Fatalf("coalescing left %.0f of %.0f doorbell IRQs", on, off)
		}
	})
}

func BenchmarkWalkcache(b *testing.B) {
	runOnce(b, "walkcache", func(b *testing.B, rows []bench.Row) {
		// The acceptance bar: warm small operations (≤2 KB, the assisted-copy
		// regime) are at least 15% faster than per-request walks.
		for _, size := range bench.WalkSizes {
			x := sizeLabel(size)
			cold := value(b, rows, "per-request walks", x)
			warm := value(b, rows, "translation cache", x)
			if warm > 0.85*cold {
				b.Fatalf("warm %s op %.3fµs not >=15%% under cold %.3fµs", x, warm, cold)
			}
		}
		// The steady-state TLB hit rate is high: one miss to prove the page,
		// hits thereafter.
		if rate := rowValue(b, rows, "TLB hit rate (1K echo)"); rate < 75 {
			b.Fatalf("steady-state TLB hit rate %.1f%%, want >= 75%%", rate)
		}
		// Batched grant hypercalls: the 8-chunk scatter-gather declare takes
		// at most 2 crossings instead of one per entry.
		perEntry := value(b, rows, "grant crossings (8-chunk CS)", "per-entry")
		batched := value(b, rows, "grant crossings (8-chunk CS)", "batched")
		if perEntry < 8 {
			b.Fatalf("per-entry 8-chunk declare took %.0f crossings, expected >= 8", perEntry)
		}
		if batched > 2 {
			b.Fatalf("batched 8-chunk declare took %.0f crossings, want <= 2", batched)
		}
	})
}

// rowValue finds a row by series alone (single-valued series).
func rowValue(b *testing.B, rows []bench.Row, series string) float64 {
	b.Helper()
	for _, r := range rows {
		if r.Series == series {
			return r.Value
		}
	}
	b.Fatalf("no row for series %q", series)
	return 0
}

// sizeLabel mirrors the bench package's sweep labels.
func sizeLabel(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

// --- observability overhead: the nil-sink guarantees ---

// The end-to-end no-op latencies of the seed cost model, captured before the
// trace instrumentation landed. The instrumented code with no tracer
// installed must reproduce them bit for bit: observability reads the virtual
// clock, it never advances it.
const (
	noopGoldenInterrupts = 35309 * sim.Nanosecond
	noopGoldenPolling    = 3109 * sim.Nanosecond
)

// TestTracingDisabledLatencyGolden runs the §6.1.1 no-op through the fully
// instrumented stack with no tracer installed and demands the
// pre-instrumentation latencies exactly.
func TestTracingDisabledLatencyGolden(t *testing.T) {
	for _, c := range []struct {
		name string
		mode paradice.Mode
		want sim.Duration
	}{
		{"interrupts", paradice.Interrupts, noopGoldenInterrupts},
		{"polling", paradice.Polling, noopGoldenPolling},
	} {
		t.Run(c.name, func(t *testing.T) {
			m, gk := guestKernel(t, paradice.Config{Mode: c.mode}, paradice.PathGPU)
			p, err := gk.NewProcess("noop")
			if err != nil {
				t.Fatal(err)
			}
			var last sim.Duration
			done := make(chan error, 1)
			p.SpawnTask("loop", func(tk *kernel.Task) {
				fd, err := tk.Open(paradice.PathGPU, 2)
				if err != nil {
					done <- err
					return
				}
				arg, err := p.Alloc(32)
				if err != nil {
					done <- err
					return
				}
				for i := 0; i < 4; i++ { // the last iteration is steady state
					start := tk.Sim().Now()
					if _, err := tk.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
						done <- err
						return
					}
					last = tk.Sim().Now().Sub(start)
				}
				done <- nil
			})
			m.Run()
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if last != c.want {
				t.Fatalf("no-op latency with tracing disabled = %v, pre-instrumentation golden %v", last, c.want)
			}
		})
	}
}

// TestFastPathDisabledGolden is the analogous guarantee for the bulk-transfer
// fast path: with the grant-map cache and doorbell coalescing compiled into
// the CVD layer but switched off — and even with the map cache ON for a
// workload that never crosses its threshold (ioctls carry no bulk data) —
// the §6.1.1 no-op latencies must match the pre-fast-path goldens bit for
// bit. A disabled optimization that shifts the baseline is a cost-model
// regression.
func TestFastPathDisabledGolden(t *testing.T) {
	for _, c := range []struct {
		name string
		cfg  paradice.Config
		want sim.Duration
	}{
		{"interrupts-off", paradice.Config{Mode: paradice.Interrupts}, noopGoldenInterrupts},
		{"polling-off", paradice.Config{Mode: paradice.Polling}, noopGoldenPolling},
		{"interrupts-mapcache-idle", paradice.Config{Mode: paradice.Interrupts, MapCache: true}, noopGoldenInterrupts},
		{"polling-mapcache-idle", paradice.Config{Mode: paradice.Polling, MapCache: true}, noopGoldenPolling},
		// Walkcache compiled in but explicitly off, alongside every other
		// fast-path knob: the TLB and grant-batch fields must be inert when
		// false even with the rest of the fast path armed-but-idle.
		{"interrupts-walkcache-off", paradice.Config{Mode: paradice.Interrupts, MapCache: true, TLB: false, GrantBatch: false}, noopGoldenInterrupts},
		{"polling-walkcache-off", paradice.Config{Mode: paradice.Polling, MapCache: true, TLB: false, GrantBatch: false}, noopGoldenPolling},
		// The adaptive transport at closed-loop no-op load never leaves
		// interrupt stance (the ~35 µs round trip IS the inter-arrival gap,
		// above the poll threshold), so it must reproduce the interrupt
		// golden bit for bit — the dormancy guarantee that makes Adaptive
		// safe to configure fleet-wide.
		{"adaptive-dormant", paradice.Config{Mode: paradice.Adaptive}, noopGoldenInterrupts},
		// BatchSize without CoalesceWindow is inert by contract: no deadline
		// exists to bound a partial batch, so both sides bypass batching.
		{"adaptive-batchsize-inert", paradice.Config{Mode: paradice.Adaptive, BatchSize: 8}, noopGoldenInterrupts},
	} {
		t.Run(c.name, func(t *testing.T) {
			m, gk := guestKernel(t, c.cfg, paradice.PathGPU)
			p, err := gk.NewProcess("noop")
			if err != nil {
				t.Fatal(err)
			}
			var last sim.Duration
			done := make(chan error, 1)
			p.SpawnTask("loop", func(tk *kernel.Task) {
				fd, err := tk.Open(paradice.PathGPU, 2)
				if err != nil {
					done <- err
					return
				}
				arg, err := p.Alloc(32)
				if err != nil {
					done <- err
					return
				}
				for i := 0; i < 4; i++ {
					start := tk.Sim().Now()
					if _, err := tk.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
						done <- err
						return
					}
					last = tk.Sim().Now().Sub(start)
				}
				done <- nil
			})
			m.Run()
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if last != c.want {
				t.Fatalf("no-op latency = %v with the fast path dormant, golden %v", last, c.want)
			}
		})
	}
}

// TestWalkcacheArmedGolden pins the armed translation-cache behavior to the
// cost model exactly. With TLB+GrantBatch on, the §6.1.1 no-op changes in
// two precisely predictable ways: every validation after the frontend's
// declare is a grant-cache hit (CostTLBHit instead of the CostGrantDeclare
// shared-page scan — from the FIRST operation, because the declare itself
// primes the cache), and every copy page after the first operation is a TLB
// hit (CostTLBHit instead of the CostCopyPerPage walk). Nothing else moves.
func TestWalkcacheArmedGolden(t *testing.T) {
	validateSaving := perf.CostGrantDeclare - perf.CostTLBHit
	walkSaving := perf.CostCopyPerPage - perf.CostTLBHit
	for _, c := range []struct {
		name   string
		mode   paradice.Mode
		golden sim.Duration
	}{
		{"interrupts", paradice.Interrupts, noopGoldenInterrupts},
		{"polling", paradice.Polling, noopGoldenPolling},
	} {
		t.Run(c.name, func(t *testing.T) {
			cfg := paradice.Config{Mode: c.mode, TLB: true, GrantBatch: true}
			m, gk := guestKernel(t, cfg, paradice.PathGPU)
			p, err := gk.NewProcess("noop")
			if err != nil {
				t.Fatal(err)
			}
			var first, last sim.Duration
			done := make(chan error, 1)
			p.SpawnTask("loop", func(tk *kernel.Task) {
				fd, err := tk.Open(paradice.PathGPU, 2)
				if err != nil {
					done <- err
					return
				}
				arg, err := p.Alloc(32)
				if err != nil {
					done <- err
					return
				}
				for i := 0; i < 4; i++ {
					start := tk.Sim().Now()
					if _, err := tk.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
						done <- err
						return
					}
					d := tk.Sim().Now().Sub(start)
					if i == 0 {
						first = d
					}
					last = d
				}
				done <- nil
			})
			m.Run()
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if want := c.golden - validateSaving; first != want {
				t.Fatalf("first armed no-op = %v, want golden-%v = %v", first, validateSaving, want)
			}
			if want := c.golden - validateSaving - walkSaving; last != want {
				t.Fatalf("warm armed no-op = %v, want golden-%v = %v", last, validateSaving+walkSaving, want)
			}
		})
	}
}

// TestTracerNilSinkZeroAllocs asserts the disabled-tracing hot path is
// allocation-free: every call instrumented code can make against the nil
// sink — registry lookup included — costs zero allocations.
func TestTracerNilSinkZeroAllocs(t *testing.T) {
	env := sim.NewEnv() // no tracer installed: Get returns the nil sink
	allocs := testing.AllocsPerRun(200, func() {
		tr := trace.Get(env)
		_ = tr.Now()
		_ = tr.NewRID()
		tr.Bind(nil, 1)
		_ = tr.RIDOf(nil)
		tr.Span(1, "vm", trace.LayerFE, "post", 0, 100)
		tr.Group(1, "vm", trace.LayerSyscall, "ioctl", 0, 100)
		tr.Instant(1, "vm", trace.LayerFaults, "point", "")
		tr.Add("counter", 1)
		tr.Set("gauge", 1)
		tr.Observe("hist", 100)
		tr.Unbind(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-sink tracer API allocates %.1f per call sequence, want 0", allocs)
	}
}

func BenchmarkTable1DeviceInventory(b *testing.B) {
	runOnce(b, "table1", func(b *testing.B, rows []bench.Row) {
		if len(rows) != 5 {
			b.Fatalf("expected 5 device classes, got %d", len(rows))
		}
	})
}

func BenchmarkTable2CodeBreakdown(b *testing.B) {
	runOnce(b, "table2", nil)
}

func BenchmarkAnalyzerOnDRM(b *testing.B) {
	runOnce(b, "analyzer", func(b *testing.B, rows []bench.Row) {
		var sawDynamic bool
		for _, r := range rows {
			if r.Series == "DRM_CS" && !strings.Contains(r.X, "JIT") {
				b.Fatal("the CS ioctl's nested copies were not classified dynamic")
			}
			if strings.Contains(r.X, "JIT") {
				sawDynamic = true
			}
		}
		if !sawDynamic {
			b.Fatal("no command required JIT slice execution")
		}
	})
}
